"""Deterministic fault injection for the recovery paths.

Crash-safety claims are only as good as the crashes they were tested
against.  This module scripts three failure families at exact,
reproducible points:

* **Router faults** — raise :class:`RouterFault` on the Nth incremental
  route attempt, simulating a bug or resource exhaustion deep inside a
  move transaction.
* **Write crashes** — raise :class:`SimulatedCrash` from the atomic
  writer's ``CRASH_HOOK``, i.e. after the checkpoint's temp file is
  durable but *before* the rename.  This is the worst crash window: the
  bytes exist but the real path still holds the previous checkpoint.
  Recovery must find the old checkpoint intact.
* **Signal faults** — deliver a real SIGINT to the current process on
  the Nth route attempt, exercising the
  :class:`~repro.resilience.interrupt.InterruptController` path
  mid-anneal rather than at a polite stage boundary.
* **Kill faults** — deliver a real SIGKILL to the current process on
  the Nth route attempt: ungraceful death with no handler, no final
  checkpoint flush, and no Python cleanup.  This is what an OOM killer
  or a cluster scheduler preemption looks like; only a *periodic*
  checkpoint survives it.  Arm this one inside a sacrificial worker
  process (see :mod:`repro.service`), never in a process you need.

plus two byte-level corrupters (:func:`corrupt_file`,
:func:`truncate_file`) for proving the checkpoint digest rejects
damaged files.

A :class:`FaultPlan` is parsed from a compact spec string
(``"router@120"``, ``"crash-rename@2"``, ``"sigint@300"``,
``"kill@300"``, comma-joined) so CI jobs and tests can describe faults
declaratively; a
:class:`FaultInjector` context manager arms the plan by installing the
two module-global hooks (``route.incremental.FAULT_HOOK``,
``resilience.atomic.CRASH_HOOK``) and disarms them on exit.  Attempt
counting is the injector's own — deterministic because the routers are.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union


class FaultError(RuntimeError):
    """Base class for injected faults."""


class RouterFault(FaultError):
    """Injected failure inside an incremental route attempt."""


class SimulatedCrash(FaultError):
    """Injected process death between artifact write and rename."""


@dataclass(frozen=True)
class FaultPlan:
    """What to break, and exactly when.

    All triggers are 1-based counts; 0 disables that fault.
    ``crash_kind`` selects which artifact class the write-crash applies
    to (checkpoints by default, so layout/trace writes stay healthy).
    """

    router_attempt: int = 0
    crash_write: int = 0
    crash_kind: str = "checkpoint"
    sigint_attempt: int = 0
    kill_attempt: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse ``"router@N,crash-rename@N,sigint@N,kill@N"`` specs.

        Raises ValueError on unknown fault names or bad counts.
        """
        router_attempt = crash_write = sigint_attempt = kill_attempt = 0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            name, sep, count_text = part.partition("@")
            if not sep:
                raise ValueError(f"fault {part!r} is missing '@N'")
            try:
                count = int(count_text)
            except ValueError:
                raise ValueError(
                    f"fault {part!r} has a non-integer trigger"
                ) from None
            if count <= 0:
                raise ValueError(f"fault {part!r} trigger must be positive")
            if name == "router":
                router_attempt = count
            elif name == "crash-rename":
                crash_write = count
            elif name == "sigint":
                sigint_attempt = count
            elif name == "kill":
                kill_attempt = count
            else:
                raise ValueError(
                    f"unknown fault {name!r} "
                    "(expected router, crash-rename, sigint, or kill)"
                )
        return cls(
            router_attempt=router_attempt,
            crash_write=crash_write,
            sigint_attempt=sigint_attempt,
            kill_attempt=kill_attempt,
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` by installing the global fault hooks.

    Use as a context manager around the run under test::

        with FaultInjector(FaultPlan(router_attempt=120)):
            annealer.run()   # raises RouterFault at route attempt 120

    Only one injector may be armed at a time; nesting raises
    RuntimeError rather than silently stacking counters.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.route_attempts = 0
        self.write_count = 0
        # Bind the hook methods once: an attribute access creates a
        # fresh bound-method object each time, so uninstall's identity
        # check needs these exact objects.
        self._route_hook = self._on_route
        self._crash_hook = self._on_write

    # ------------------------------------------------------------------
    # Hook bodies
    # ------------------------------------------------------------------
    def _on_route(self, kind: str, net_index: int) -> None:
        self.route_attempts += 1
        if self.route_attempts == self.plan.kill_attempt:
            # Ungraceful death: SIGKILL cannot be caught, so nothing
            # after this line runs — no final checkpoint, no cleanup.
            os.kill(os.getpid(), signal.SIGKILL)
        if self.route_attempts == self.plan.sigint_attempt:
            os.kill(os.getpid(), signal.SIGINT)
        if self.route_attempts == self.plan.router_attempt:
            raise RouterFault(
                f"injected router fault at attempt {self.route_attempts} "
                f"({kind} route of net {net_index})"
            )

    def _on_write(self, path: Path, kind: str) -> None:
        if kind != self.plan.crash_kind:
            return
        self.write_count += 1
        if self.write_count == self.plan.crash_write:
            raise SimulatedCrash(
                f"injected crash before renaming {path} "
                f"(write {self.write_count})"
            )

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        from . import atomic
        from ..route import incremental

        if incremental.FAULT_HOOK is not None or atomic.CRASH_HOOK is not None:
            raise RuntimeError("a fault injector is already armed")
        if self.plan.router_attempt or self.plan.sigint_attempt \
                or self.plan.kill_attempt:
            incremental.FAULT_HOOK = self._route_hook
        if self.plan.crash_write:
            atomic.CRASH_HOOK = self._crash_hook
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        from . import atomic
        from ..route import incremental

        if incremental.FAULT_HOOK is self._route_hook:
            incremental.FAULT_HOOK = None
        if atomic.CRASH_HOOK is self._crash_hook:
            atomic.CRASH_HOOK = None


# ----------------------------------------------------------------------
# Byte-level corrupters
# ----------------------------------------------------------------------
def corrupt_file(
    path: Union[str, Path],
    offset: Optional[int] = None,
    flip: int = 0x01,
) -> int:
    """Flip one byte of a file in place; returns the offset corrupted.

    Defaults to the middle byte, which for the compact checkpoint
    envelope always lands inside semantic JSON, never in ignorable
    whitespace.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"{path} is empty; nothing to corrupt")
    if offset is None:
        offset = len(data) // 2
    data[offset] ^= flip
    path.write_bytes(bytes(data))
    return offset


def truncate_file(path: Union[str, Path], keep_fraction: float = 0.5) -> int:
    """Cut a file short, as a torn non-atomic write would; returns new size."""
    path = Path(path)
    data = path.read_bytes()
    keep = int(len(data) * keep_fraction)
    path.write_bytes(data[:keep])
    return keep

"""Technology mapping: cover a gate DAG with k-input FPGA logic cells.

A row-based FPGA logic module realizes any function of up to ``k``
inputs (k=4 here, matching the 4-input palette of
:mod:`repro.netlist.cell`), so mapping is *covering*: partition the
gate DAG into single-output clusters with at most k distinct external
inputs each, one logic cell per cluster.

The algorithm is the classic greedy tree-covering in topological order
(in the spirit of Chortle [17]): each gate starts as its own cluster
and absorbs a fanin gate's cluster whenever (a) that gate's only fanout
is this gate — absorbing a shared gate would duplicate logic — and
(b) the merged cluster still has at most k distinct leaf signals.
Gates never absorbed by their fanout become cluster roots, i.e. mapped
cells.

:class:`MappingResult` carries the mapped
:class:`~repro.netlist.Netlist` (directly consumable by the layout
flows), the cluster cover, and a cluster-wise simulator so tests can
check functional equivalence against the original gate network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..netlist.cell import Cell
from ..netlist.net import Net
from ..netlist.netlist import Netlist
from .gates import DFF, GATE_FUNCTIONS, INPUT, OUTPUT, GateNetlist

DEFAULT_K = 4


@dataclass(frozen=True)
class Cluster:
    """One mapped logic cell: a root gate, its covered gates, its leaves.

    ``leaves`` are the external signals feeding the cluster, in the
    order they bind to the cell's input ports ``i0..``; ``gates`` are
    the covered gate names in evaluation (topological) order, ending
    with ``root``.
    """

    root: str
    leaves: tuple[str, ...]
    gates: tuple[str, ...]

    @property
    def num_inputs(self) -> int:
        """Number of cluster input leaves."""
        return len(self.leaves)


class TechmapError(ValueError):
    """The gate network cannot be covered with the given k."""


def cover(circuit: GateNetlist, k: int = DEFAULT_K) -> list[Cluster]:
    """Greedy k-feasible cover of the gate DAG (see module docstring)."""
    if k < 2:
        raise TechmapError(f"k must be >= 2, got {k}")
    cluster_leaves: dict[str, list[str]] = {}
    cluster_gates: dict[str, list[str]] = {}
    absorbed: set[str] = set()

    for name in circuit.topo_order:
        node = circuit.node(name)
        if not node.is_gate:
            continue
        leaves: list[str] = []
        gates: list[str] = []

        def add_leaf(signal: str) -> None:
            if signal not in leaves:
                leaves.append(signal)

        for position, fanin in enumerate(node.fanins):
            # Budget that must stay free for the not-yet-visited fanins
            # (each costs at most one leaf if taken as a leaf).
            reserve = len(node.fanins) - position - 1
            fanin_node = circuit.node(fanin)
            can_absorb = (
                fanin_node.is_gate
                and circuit.fanouts(fanin) == [name]
            )
            if can_absorb:
                merged = list(leaves)
                for leaf in cluster_leaves[fanin]:
                    if leaf not in merged:
                        merged.append(leaf)
                if len(merged) + reserve <= k:
                    leaves = merged
                    gates.extend(cluster_gates[fanin])
                    absorbed.add(fanin)
                    continue
            add_leaf(fanin)
        if len(leaves) > k:
            raise TechmapError(
                f"gate {name!r} alone needs {len(leaves)} inputs > k={k}"
            )
        gates.append(name)
        cluster_leaves[name] = leaves
        cluster_gates[name] = gates

    return [
        Cluster(root, tuple(cluster_leaves[root]), tuple(cluster_gates[root]))
        for root in cluster_leaves
        if root not in absorbed
    ]


@dataclass
class MappingResult:
    """Outcome of technology mapping."""

    circuit: GateNetlist
    netlist: Netlist
    clusters: dict[str, Cluster]  # root gate name -> cluster
    k: int

    @property
    def num_cells(self) -> int:
        """Number of cells."""
        return self.netlist.num_cells

    def evaluate_cluster(self, root: str, leaf_values: dict[str, int]) -> int:
        """Evaluate one mapped cell's function from its leaf values."""
        cluster = self.clusters[root]
        values = dict(leaf_values)
        for gate_name in cluster.gates:
            node = self.circuit.node(gate_name)
            args = [values[f] for f in node.fanins]
            values[gate_name] = GATE_FUNCTIONS[node.kind](*args)
        return values[root]

    def simulate(
        self,
        input_values: dict[str, int],
        state_values: Optional[dict[str, int]] = None,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """Cluster-wise simulation of the mapped design.

        Mirrors :meth:`GateNetlist.simulate`, so equality over random
        vectors demonstrates the cover preserved the circuit's function.
        """
        state_values = state_values or {}
        values: dict[str, int] = {}
        for node in self.circuit.inputs():
            values[node.name] = input_values[node.name] & 1
        for node in self.circuit.dffs():
            values[node.name] = state_values.get(node.name, 0) & 1
        # Cluster roots in topological order of their root gates.
        order = [
            name for name in self.circuit.topo_order if name in self.clusters
        ]
        for root in order:
            cluster = self.clusters[root]
            leaf_values = {leaf: values[leaf] for leaf in cluster.leaves}
            values[root] = self.evaluate_cluster(root, leaf_values)
        outputs = {
            node.name: values[node.fanins[0]]
            for node in self.circuit.outputs()
        }
        next_state = {
            node.name: values[node.fanins[0]]
            for node in self.circuit.dffs()
        }
        return outputs, next_state


def _live_clusters(
    circuit: GateNetlist, clusters: dict[str, Cluster]
) -> dict[str, Cluster]:
    """Dead-code elimination: keep only clusters that reach a boundary.

    Synthesis stand-ins can leave gates whose outputs nothing reads;
    mapping sweeps them (a real mapper would too) so the layout netlist
    has no dead cells.
    """
    needed: set[str] = set()
    worklist: list[str] = []
    for node in circuit.outputs():
        worklist.append(node.fanins[0])
    for node in circuit.dffs():
        worklist.append(node.fanins[0])
    while worklist:
        signal = worklist.pop()
        if signal in needed or signal not in clusters:
            continue
        needed.add(signal)
        worklist.extend(clusters[signal].leaves)
    return {root: clusters[root] for root in clusters if root in needed}


def technology_map(circuit: GateNetlist, k: int = DEFAULT_K) -> MappingResult:
    """Map a gate network into an FPGA cell netlist ready for layout."""
    clusters = {cluster.root: cluster for cluster in cover(circuit, k)}
    clusters = _live_clusters(circuit, clusters)
    netlist = Netlist(circuit.name)

    for node in circuit.inputs():
        netlist.add_cell(Cell(node.name, "input"))
    for node in circuit.outputs():
        netlist.add_cell(Cell(node.name, "output", num_inputs=1))
    for node in circuit.dffs():
        netlist.add_cell(Cell(node.name, "seq", num_inputs=1))
    for root in (
        name for name in circuit.topo_order if name in clusters
    ):
        netlist.add_cell(
            Cell(root, "comb", num_inputs=clusters[root].num_inputs)
        )

    def driver_terminal(signal: str) -> tuple[str, str]:
        node = circuit.node(signal)
        if node.kind == INPUT:
            return (signal, "pad_out")
        if node.kind == DFF:
            return (signal, "q")
        if signal in clusters:
            return (signal, "y")
        raise TechmapError(
            f"signal {signal!r} is not a mapped driver (absorbed gate "
            "referenced externally?)"
        )

    # Sinks per driving signal.
    sinks: dict[str, list[tuple[str, str]]] = {}
    for root, cluster in clusters.items():
        for position, leaf in enumerate(cluster.leaves):
            sinks.setdefault(leaf, []).append((root, f"i{position}"))
    for node in circuit.outputs():
        sinks.setdefault(node.fanins[0], []).append((node.name, "pad_in"))
    for node in circuit.dffs():
        sinks.setdefault(node.fanins[0], []).append((node.name, "d"))

    for signal, terminal_list in sinks.items():
        netlist.add_net(
            Net(f"n_{signal}", driver_terminal(signal), tuple(terminal_list))
        )
    netlist.freeze()
    return MappingResult(circuit, netlist, clusters, k)

"""Generic gate-level netlists — the input to technology mapping.

The paper's flow (Figure 1) starts upstream of layout: "Logic synthesis
and technology mapping tools convert a high level circuit description
into a net-list of FPGA logic block sized cells".  This module models
the *pre-mapping* representation: a DAG of simple logic gates between
primary inputs, primary outputs and D flip-flops.

Gate functions are limited to the standard synthesis basis (NOT/BUF and
the 2-input AND/OR/XOR/NAND/NOR) — exactly what a generic-library
optimizer would hand a mapper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

GATE_FUNCTIONS: dict[str, Callable[..., int]] = {
    "NOT": lambda a: 1 - a,
    "BUF": lambda a: a,
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "NAND": lambda a, b: 1 - (a & b),
    "NOR": lambda a, b: 1 - (a | b),
}

#: Fanin count per gate type.
GATE_ARITY = {name: fn.__code__.co_argcount for name, fn in GATE_FUNCTIONS.items()}

INPUT = "INPUT"
OUTPUT = "OUTPUT"
DFF = "DFF"


@dataclass
class GateNode:
    """One node of the gate-level DAG.

    ``kind`` is a gate type from :data:`GATE_FUNCTIONS`, or one of the
    structural kinds ``INPUT`` (no fanins), ``OUTPUT`` (one fanin) and
    ``DFF`` (one fanin; its output is a sequential source).
    """

    name: str
    kind: str
    fanins: tuple[str, ...] = ()
    index: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.kind in GATE_FUNCTIONS:
            need = GATE_ARITY[self.kind]
        elif self.kind == INPUT:
            need = 0
        elif self.kind in (OUTPUT, DFF):
            need = 1
        else:
            raise ValueError(f"unknown gate kind {self.kind!r}")
        if len(self.fanins) != need:
            raise ValueError(
                f"{self.kind} gate {self.name!r} needs {need} fanins, "
                f"got {len(self.fanins)}"
            )

    @property
    def is_gate(self) -> bool:
        """Whether the node is a logic gate (not structural)."""
        return self.kind in GATE_FUNCTIONS

    @property
    def is_source(self) -> bool:
        """Produces a combinationally-fresh value (PI or DFF output)."""
        return self.kind in (INPUT, DFF)


class GateNetlist:
    """A validated gate-level circuit."""

    def __init__(self, name: str, nodes: Iterable[GateNode]) -> None:
        self.name = name
        self.nodes: list[GateNode] = list(nodes)
        self._by_name: dict[str, GateNode] = {}
        for node in self.nodes:
            if node.name in self._by_name:
                raise ValueError(f"duplicate gate name {node.name!r}")
            node.index = len(self._by_name)
            self._by_name[node.name] = node
        for node in self.nodes:
            for fanin in node.fanins:
                if fanin not in self._by_name:
                    raise ValueError(
                        f"gate {node.name!r} references unknown {fanin!r}"
                    )
                if self._by_name[fanin].kind == OUTPUT:
                    raise ValueError(
                        f"gate {node.name!r} reads from output {fanin!r}"
                    )
        self._fanouts: dict[str, list[str]] = {n.name: [] for n in self.nodes}
        for node in self.nodes:
            for fanin in node.fanins:
                self._fanouts[fanin].append(node.name)
        self._topo = self._topo_order()

    def node(self, name: str) -> GateNode:
        """Look up a node by name."""
        return self._by_name[name]

    def fanouts(self, name: str) -> list[str]:
        """Names of nodes reading this node's output."""
        return self._fanouts[name]

    def _topo_order(self) -> list[str]:
        """Topological order of the combinational part (sources first)."""
        order: list[str] = []
        remaining: dict[str, int] = {}
        ready: list[str] = []
        for node in self.nodes:
            comb_fanins = 0 if node.is_source else len(node.fanins)
            remaining[node.name] = comb_fanins
            if comb_fanins == 0:
                ready.append(node.name)
        while ready:
            name = ready.pop()
            order.append(name)
            node = self._by_name[name]
            if node.kind == OUTPUT:
                continue
            for fanout in self._fanouts[name]:
                fanout_node = self._by_name[fanout]
                if fanout_node.is_source:
                    continue  # DFF inputs do not gate readiness
                remaining[fanout] -= 1
                if remaining[fanout] == 0:
                    ready.append(fanout)
        # DFF/OUTPUT nodes with pending fanins appear once their fanin
        # resolves; a shortfall means a combinational cycle.
        if len(order) != len(self.nodes):
            stuck = [n for n, count in remaining.items() if count > 0]
            raise ValueError(
                f"combinational cycle involving: {', '.join(sorted(stuck)[:6])}"
            )
        return order

    @property
    def topo_order(self) -> list[str]:
        """Topological order (sources first)."""
        return list(self._topo)

    def gates(self) -> list[GateNode]:
        """All logic-gate nodes."""
        return [n for n in self.nodes if n.is_gate]

    def inputs(self) -> list[GateNode]:
        """All primary-input nodes."""
        return [n for n in self.nodes if n.kind == INPUT]

    def outputs(self) -> list[GateNode]:
        """All primary-output nodes."""
        return [n for n in self.nodes if n.kind == OUTPUT]

    def dffs(self) -> list[GateNode]:
        """All flip-flop nodes."""
        return [n for n in self.nodes if n.kind == DFF]

    # ------------------------------------------------------------------
    # Simulation (the mapper's equivalence oracle)
    # ------------------------------------------------------------------
    def simulate(
        self,
        input_values: dict[str, int],
        state_values: Optional[dict[str, int]] = None,
    ) -> tuple[dict[str, int], dict[str, int]]:
        """One combinational evaluation plus the next DFF state.

        Returns ``(output_values, next_state)``; ``state_values`` maps
        DFF names to their current outputs (default all 0).
        """
        state_values = state_values or {}
        values: dict[str, int] = {}
        for node_name in self._topo:
            node = self._by_name[node_name]
            if node.kind == INPUT:
                values[node.name] = input_values[node.name] & 1
            elif node.kind == DFF:
                values[node.name] = state_values.get(node.name, 0) & 1
            elif node.kind == OUTPUT:
                values[node.name] = values[node.fanins[0]]
            else:
                args = [values[f] for f in node.fanins]
                values[node.name] = GATE_FUNCTIONS[node.kind](*args)
        outputs = {n.name: values[n.name] for n in self.outputs()}
        next_state = {
            n.name: values[n.fanins[0]] for n in self.dffs()
        }
        return outputs, next_state

    def __repr__(self) -> str:
        return (
            f"GateNetlist({self.name!r}, gates={len(self.gates())}, "
            f"inputs={len(self.inputs())}, outputs={len(self.outputs())}, "
            f"dffs={len(self.dffs())})"
        )


def random_logic(
    seed: int,
    num_gates: int = 80,
    num_inputs: int = 8,
    num_outputs: int = 6,
    num_dffs: int = 4,
) -> GateNetlist:
    """A random, valid gate-level circuit (the synthesis stand-in)."""
    if num_gates < 1 or num_inputs < 1 or num_outputs < 1:
        raise ValueError("need at least 1 gate, input and output")
    rng = random.Random(seed)
    nodes: list[GateNode] = []
    available: list[str] = []
    for k in range(num_inputs):
        nodes.append(GateNode(f"x{k}", INPUT))
        available.append(f"x{k}")
    dff_names = [f"r{k}" for k in range(num_dffs)]
    available.extend(dff_names)

    two_input = ["AND", "OR", "XOR", "NAND", "NOR"]
    gate_names: list[str] = []
    for k in range(num_gates):
        name = f"g{k}"
        if rng.random() < 0.15:
            kind = rng.choice(["NOT", "BUF"])
            fanins = (rng.choice(available),)
        else:
            kind = rng.choice(two_input)
            a = rng.choice(available)
            b = rng.choice(available)
            fanins = (a, b)
        nodes.append(GateNode(name, kind, fanins))
        available.append(name)
        gate_names.append(name)

    # DFF inputs and primary outputs read late values for depth.
    pool = gate_names[-max(1, num_gates // 2):] or available
    for name in dff_names:
        nodes.append(GateNode(name, DFF, (rng.choice(pool),)))
    for k in range(num_outputs):
        nodes.append(GateNode(f"y{k}", OUTPUT, (rng.choice(pool),)))
    return GateNetlist(f"logic{seed}", nodes)

"""Technology-mapping substrate: gate-level netlists -> FPGA cells.

The upstream stage of the paper's Figure-1 flow.  ``random_logic``
generates a gate-level circuit, ``technology_map`` covers it with
k-input logic cells, and the result's ``netlist`` feeds straight into
the layout flows.
"""

from .gates import (
    DFF,
    GATE_ARITY,
    GATE_FUNCTIONS,
    GateNetlist,
    GateNode,
    INPUT,
    OUTPUT,
    random_logic,
)
from .mapping import (
    Cluster,
    DEFAULT_K,
    MappingResult,
    TechmapError,
    cover,
    technology_map,
)

__all__ = [
    "Cluster",
    "DEFAULT_K",
    "DFF",
    "GATE_ARITY",
    "GATE_FUNCTIONS",
    "GateNetlist",
    "GateNode",
    "INPUT",
    "MappingResult",
    "OUTPUT",
    "TechmapError",
    "cover",
    "random_logic",
    "technology_map",
]

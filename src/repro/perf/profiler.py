"""Near-zero-overhead counters and section timers for the hot loop.

The annealer's inner loop runs hundreds of thousands of move
transactions; instrumenting it must not distort what it measures.  The
pattern used throughout the hot paths is therefore a *guarded* probe::

    prof = ctx.profiler          # None unless --profile was requested
    if prof is not None:
        t0 = perf_counter()
    ... work ...
    if prof is not None:
        prof.add_time("repair", perf_counter() - t0)

When profiling is off the only cost is one ``is not None`` test per
section — no timer calls, no allocation, no virtual dispatch.  When it
is on, :class:`Profiler` accumulates wall time and call counts per
named section plus arbitrary event counters, and :meth:`Profiler.finish`
folds everything into an immutable :class:`RunProfile` that rides on
``AnnealResult`` and serializes to JSON for the benchmark harnesses.

Profiling never touches the random-number stream or any layout state,
so identical seeds produce bit-identical results with and without it
(``tests/test_perf.py`` guards this).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterator, Optional

#: Canonical section names used by the move-transaction hot path, in
#: display order.  Other sections may be added freely; these just sort
#: first in reports.
HOT_SECTIONS = ("ripup", "repair", "timing", "cost", "rollback")


class Profiler:
    """Mutable accumulator for one run's counters and section timers."""

    __slots__ = ("section_s", "section_calls", "counters")

    def __init__(self) -> None:
        self.section_s: dict[str, float] = {}
        self.section_calls: dict[str, int] = {}
        self.counters: dict[str, int] = {}

    # -- hot-path probes (call only under an ``is not None`` guard) ----
    def add_time(self, name: str, seconds: float) -> None:
        """Accumulate one timed section sample."""
        self.section_s[name] = self.section_s.get(name, 0.0) + seconds
        self.section_calls[name] = self.section_calls.get(name, 0) + 1

    def count(self, name: str, n: int = 1) -> None:
        """Bump an event counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    # -- convenience for non-hot call sites ----------------------------
    @contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Context-manager form of :meth:`add_time` for cool paths."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.add_time(name, perf_counter() - t0)

    def finish(
        self,
        wall_time_s: float,
        moves_attempted: int,
        moves_accepted: int,
    ) -> "RunProfile":
        """Freeze the accumulated data into a :class:`RunProfile`."""
        return RunProfile(
            wall_time_s=wall_time_s,
            moves_attempted=moves_attempted,
            moves_accepted=moves_accepted,
            section_s=dict(self.section_s),
            section_calls=dict(self.section_calls),
            counters=dict(self.counters),
        )


@dataclass(frozen=True)
class RunProfile:
    """Immutable per-run profile attached to ``AnnealResult.profile``."""

    wall_time_s: float
    moves_attempted: int
    moves_accepted: int
    section_s: dict[str, float] = field(default_factory=dict)
    section_calls: dict[str, int] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    @property
    def moves_per_sec(self) -> float:
        """Attempted moves per wall-clock second."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.moves_attempted / self.wall_time_s

    @property
    def mean_nets_journaled(self) -> float:
        """Average nets journaled per attempted move."""
        if not self.moves_attempted:
            return 0.0
        return self.counters.get("nets_journaled", 0) / self.moves_attempted

    def section_fraction(self, name: str) -> float:
        """Share of total wall time spent in one section."""
        if self.wall_time_s <= 0:
            return 0.0
        return self.section_s.get(name, 0.0) / self.wall_time_s

    def as_dict(self) -> dict:
        """Machine-readable form (what the benchmark JSON records)."""
        return {
            "wall_time_s": self.wall_time_s,
            "moves_attempted": self.moves_attempted,
            "moves_accepted": self.moves_accepted,
            "moves_per_sec": self.moves_per_sec,
            "mean_nets_journaled": self.mean_nets_journaled,
            "section_s": dict(self.section_s),
            "section_calls": dict(self.section_calls),
            "counters": dict(self.counters),
        }

    def format(self) -> str:
        """Human-readable multi-line summary for the CLI."""
        lines = [
            f"profile: {self.moves_attempted} moves in "
            f"{self.wall_time_s:.2f}s  ->  {self.moves_per_sec:.1f} moves/s",
            f"  nets journaled / move: {self.mean_nets_journaled:.2f}",
        ]
        ordered = [s for s in HOT_SECTIONS if s in self.section_s]
        ordered += sorted(set(self.section_s) - set(HOT_SECTIONS))
        for name in ordered:
            total = self.section_s[name]
            calls = self.section_calls.get(name, 0)
            lines.append(
                f"  {name:>10}: {total:8.3f}s "
                f"({100.0 * self.section_fraction(name):5.1f}%) "
                f"over {calls} calls"
            )
        for name in sorted(self.counters):
            lines.append(f"  {name:>22}: {self.counters[name]}")
        return "\n".join(lines)


def maybe_profiler(enabled: bool) -> Optional[Profiler]:
    """The single profiling entry point shared by CLI / flows / benches."""
    return Profiler() if enabled else None

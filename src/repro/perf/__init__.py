"""Profiling and performance observability (``repro.perf``).

Counters, section timers, and the per-run :class:`RunProfile` record
that the annealer attaches to its result when profiling is enabled.
"""

from .profiler import HOT_SECTIONS, Profiler, RunProfile, maybe_profiler

__all__ = ["HOT_SECTIONS", "Profiler", "RunProfile", "maybe_profiler"]

"""repro — Performance-driven simultaneous place and route for row-based FPGAs.

A from-scratch reproduction of Nag & Rutenbar, DAC 1994.  The package
provides the whole stack the paper builds on:

* :mod:`repro.arch` — row-based antifuse FPGA device model (segmented
  channels, vertical tracks, pinmaps, RC technology);
* :mod:`repro.netlist` — mapped netlists, a text format, and seeded
  synthetic MCNC-scale benchmark circuits;
* :mod:`repro.place` — placement state and classical wiring estimators;
* :mod:`repro.route` — segmented-channel detailed routing, feedthrough
  global routing, and the incremental rip-up/repair engine;
* :mod:`repro.timing` — levelized STA with exact Elmore delay on
  embedded nets and crude estimation elsewhere;
* :mod:`repro.core` — the paper's contribution, the simultaneous
  place-and-route annealer;
* :mod:`repro.flows` — end-to-end flows (sequential baseline vs
  simultaneous) scored with the same post-layout STA;
* :mod:`repro.analysis` — experiment harness helpers (Table-2 sweeps,
  table formatting);
* :mod:`repro.obs` — structured anneal tracing, a metrics registry,
  and the ``repro-fpga trace`` run-comparison tooling.

Quickstart::

    from repro import act1_like, paper_benchmark, run_simultaneous

    netlist = paper_benchmark("s1")
    arch = act1_like(
        num_io=len(netlist.cells_of_kind("input", "output")),
        num_logic=len(netlist.cells_of_kind("comb", "seq")),
    )
    result = run_simultaneous(netlist, arch)
    print(result.worst_delay, result.fully_routed)
"""

from .arch import (
    ANTIFUSE_DOMINATED,
    Architecture,
    Fabric,
    FabricSpec,
    Technology,
    WIRE_DOMINATED,
    act1_like,
    coarse_grained,
    fine_grained,
    wire_dominated,
)
from .core import (
    AnnealResult,
    AnnealerConfig,
    ScheduleConfig,
    SimultaneousAnnealer,
    fast_config,
    thorough_config,
)
from .flows import (
    FlowResult,
    SequentialConfig,
    fast_sequential_config,
    run_sequential,
    run_simultaneous,
    timing_improvement_percent,
)
from .obs import (
    Instrumentation,
    MetricsRegistry,
    RunTrace,
    Tracer,
    maybe_tracer,
    read_trace,
)
from .perf import Profiler, RunProfile, maybe_profiler
from .netlist import (
    CircuitSpec,
    Netlist,
    PAPER_SPECS,
    TABLE_DESIGNS,
    generate,
    paper_benchmark,
    paper_benchmarks,
    tiny,
)
from .analysis import SweepResult, format_table, min_tracks_for_routing
from .partition import bipartition, extract_all_blocks, kway_partition
from .techmap import random_logic, technology_map

__version__ = "1.0.0"

__all__ = [
    "ANTIFUSE_DOMINATED",
    "AnnealResult",
    "AnnealerConfig",
    "Architecture",
    "CircuitSpec",
    "Fabric",
    "FabricSpec",
    "FlowResult",
    "Instrumentation",
    "MetricsRegistry",
    "Netlist",
    "PAPER_SPECS",
    "Profiler",
    "RunProfile",
    "RunTrace",
    "Tracer",
    "ScheduleConfig",
    "SequentialConfig",
    "SimultaneousAnnealer",
    "SweepResult",
    "TABLE_DESIGNS",
    "Technology",
    "WIRE_DOMINATED",
    "__version__",
    "act1_like",
    "bipartition",
    "coarse_grained",
    "extract_all_blocks",
    "fast_config",
    "fast_sequential_config",
    "fine_grained",
    "format_table",
    "generate",
    "kway_partition",
    "maybe_profiler",
    "maybe_tracer",
    "min_tracks_for_routing",
    "paper_benchmark",
    "read_trace",
    "random_logic",
    "paper_benchmarks",
    "run_sequential",
    "run_simultaneous",
    "technology_map",
    "thorough_config",
    "timing_improvement_percent",
    "tiny",
    "wire_dominated",
]


def architecture_for(netlist: "Netlist", tracks_per_channel: int = 24,
                     vtracks_per_column: int = 8) -> "Architecture":
    """The default ACT-1-like architecture sized for ``netlist``."""
    return act1_like(
        num_io=len(netlist.cells_of_kind("input", "output")),
        num_logic=len(netlist.cells_of_kind("comb", "seq")),
        tracks_per_channel=tracks_per_channel,
        vtracks_per_column=vtracks_per_column,
    )

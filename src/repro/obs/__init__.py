"""repro.obs — structured observability for anneal runs.

Three cooperating pieces (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.tracer` — the event tracer the annealer, transaction
  layer, routers, and timing engine emit structured events into, plus
  :class:`Instrumentation`, the single hook point that builds the
  profiler/tracer/sanitizer bundle from a config;
* :mod:`repro.obs.metrics` — counters/gauges/histograms with explicit
  snapshots, safe to probe from hot loops under an ``is not None``
  guard;
* :mod:`repro.obs.events` / :mod:`repro.obs.summary` — the
  schema-versioned JSONL trace format and the offline analysis behind
  ``repro-fpga trace``;
* :mod:`repro.obs.ledger` / :mod:`repro.obs.report` — the append-only
  cross-run ledger and the HTML observatory behind ``repro-fpga runs``;
* :mod:`repro.obs.live` — the heartbeat sidecar, tail-follow trace
  reader, and incremental anomaly engine behind ``repro-fpga watch``.

Everything is off by default and free when off: disabled tracing costs
the hot loop one ``is not None`` test per probe site, and an enabled
tracer never reads clocks or RNG, so traced runs are bit-identical to
untraced ones.

This package must stay importable without :mod:`repro.core` — the core
imports *us*.  Analysis-side modules (summary, cli, xray) are therefore
not imported here; load them explicitly.  The snapshot API
(:mod:`repro.obs.snapshot`), which depends on the route/timing layers
but not on core, is re-exported lazily via module ``__getattr__`` so
that plain ``import repro.obs`` stays as light as before.
"""

from .console import Console, DEFAULT_CONSOLE, get_console
from .events import (
    EVENT_REQUIRED,
    TRACE_SCHEMA_VERSION,
    RunTrace,
    read_trace,
    reconstructed_cost,
    schema_descriptor,
    validate_events,
)
from .metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRegistry,
    counter_delta,
    maybe_metrics,
)
from .tracer import (
    Instrumentation,
    Tracer,
    build_manifest,
    config_digest,
    maybe_tracer,
)

_SNAPSHOT_EXPORTS = (
    "SNAPSHOT_SCHEMA_VERSION",
    "capture_snapshot",
    "diff_snapshots",
    "read_snapshot",
    "validate_snapshot",
    "write_snapshot",
)

#: Live observability API (repro.obs.live), re-exported lazily for the
#: same reason as the ledger: writers pull in the resilience layer.
_LIVE_EXPORTS = (
    "HEARTBEAT_SCHEMA_VERSION",
    "Alarm",
    "AnomalyEngine",
    "HeartbeatWriter",
    "TraceFollower",
    "WatchState",
    "follow_trace",
    "heartbeat_path",
    "heartbeat_pid_dead",
    "local_host",
    "maybe_heartbeat",
    "pid_alive",
    "read_heartbeat",
    "watch_once",
)

#: Cross-run ledger API (repro.obs.ledger), re-exported lazily like the
#: snapshot API: it pulls in the resilience layer on write, which plain
#: ``import repro.obs`` should not pay for.
_LEDGER_EXPORTS = (
    "LEDGER_SCHEMA_VERSION",
    "Ledger",
    "LedgerError",
    "append_record",
    "make_record",
    "read_ledger",
    "record_from_result",
)


def __getattr__(name: str):
    if name in _SNAPSHOT_EXPORTS:
        from . import snapshot as _snapshot

        return getattr(_snapshot, name)
    if name in _LEDGER_EXPORTS:
        from . import ledger as _ledger

        return getattr(_ledger, name)
    if name in _LIVE_EXPORTS:
        from . import live as _live

        return getattr(_live, name)
    if name == "render_report":
        from .report import render_report

        return render_report
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Console",
    "DEFAULT_CONSOLE",
    "get_console",
    "EVENT_REQUIRED",
    "TRACE_SCHEMA_VERSION",
    "RunTrace",
    "read_trace",
    "reconstructed_cost",
    "schema_descriptor",
    "validate_events",
    "HISTOGRAM_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "counter_delta",
    "maybe_metrics",
    "Instrumentation",
    "Tracer",
    "build_manifest",
    "config_digest",
    "maybe_tracer",
    *_SNAPSHOT_EXPORTS,
    *_LEDGER_EXPORTS,
    *_LIVE_EXPORTS,
    "render_report",
]

"""Command line for trace tooling: ``python -m repro.obs <cmd>``.

Also reachable as ``repro-fpga trace <cmd>`` from the main CLI.
Exit codes: 0 = ok, 1 = problems found (invalid trace / cost-
reconstruction mismatch), 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .events import RunTrace, read_trace, reconstructed_cost
from .summary import diff_traces, find_anomalies, summarize


def _load(path: str) -> RunTrace:
    trace = read_trace(Path(path))
    problems = trace.validate()
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return trace


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the trace CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga trace",
        description="Summarize, diff, and validate anneal traces "
        "(see docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="render one trace as tables and sparklines"
    )
    p_summary.add_argument("trace", help="JSONL trace file")
    p_summary.add_argument(
        "--max-rows", type=int, default=12,
        help="max rows in the per-stage table (default: 12)",
    )

    p_diff = sub.add_parser(
        "diff", help="compare two traces stage by stage"
    )
    p_diff.add_argument("trace_a", help="first JSONL trace file")
    p_diff.add_argument("trace_b", help="second JSONL trace file")

    p_validate = sub.add_parser(
        "validate",
        help="check a trace against the event schema and the "
        "cost-reconstruction invariant",
    )
    p_validate.add_argument("trace", help="JSONL trace file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Trace CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "summary":
            trace = _load(args.trace)
            print(summarize(trace, max_rows=args.max_rows))
            return 0

        if args.command == "diff":
            a = _load(args.trace_a)
            b = _load(args.trace_b)
            print(f"A: {args.trace_a}")
            print(f"B: {args.trace_b}")
            print(diff_traces(a, b))
            return 0

        if args.command == "validate":
            trace = _load(args.trace)  # exits 1 on schema problems
            failures = 0
            end = trace.run_end
            if end is not None and end.get("final_cost") is not None:
                rebuilt = reconstructed_cost(end)
                if rebuilt is not None and rebuilt != end["final_cost"]:
                    print(
                        f"{args.trace}: cost reconstruction mismatch: "
                        f"recorded {end['final_cost']!r}, rebuilt {rebuilt!r}",
                        file=sys.stderr,
                    )
                    failures += 1
            anomalies = find_anomalies(trace)
            for anomaly in anomalies:
                print(f"{args.trace}: anomaly: {anomaly}")
            stages = len(trace.stages)
            status = "ok" if not failures else "INVALID"
            print(
                f"{args.trace}: {status} "
                f"({len(trace.events)} events, {stages} stages, "
                f"{len(anomalies)} anomalies)"
            )
            return 1 if failures else 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main())

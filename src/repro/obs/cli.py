"""Command line for trace tooling: ``python -m repro.obs <cmd>``.

Also reachable as ``repro-fpga trace <cmd>`` from the main CLI.
Exit codes: 0 = ok, 1 = problems found (invalid trace / cost-
reconstruction mismatch), 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .events import RunTrace, read_trace, reconstructed_cost
from .snapshot import diff_snapshots, validate_snapshot
from .summary import diff_traces, find_anomalies, summarize
from .xray import render_diff, render_snapshot, render_svg


def _load(path: str) -> RunTrace:
    trace = read_trace(Path(path))
    problems = trace.validate()
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return trace


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the trace CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga trace",
        description="Summarize, diff, and validate anneal traces "
        "(see docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="render one trace as tables and sparklines"
    )
    p_summary.add_argument("trace", help="JSONL trace file")
    p_summary.add_argument(
        "--max-rows", type=int, default=12,
        help="max rows in the per-stage table (default: 12)",
    )

    p_diff = sub.add_parser(
        "diff", help="compare two traces stage by stage"
    )
    p_diff.add_argument("trace_a", help="first JSONL trace file")
    p_diff.add_argument("trace_b", help="second JSONL trace file")

    p_validate = sub.add_parser(
        "validate",
        help="check a trace against the event schema and the "
        "cost-reconstruction invariant",
    )
    p_validate.add_argument("trace", help="JSONL trace file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Trace CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "summary":
            trace = _load(args.trace)
            print(summarize(trace, max_rows=args.max_rows))
            return 0

        if args.command == "diff":
            a = _load(args.trace_a)
            b = _load(args.trace_b)
            print(f"A: {args.trace_a}")
            print(f"B: {args.trace_b}")
            print(diff_traces(a, b))
            return 0

        if args.command == "validate":
            trace = _load(args.trace)  # exits 1 on schema problems
            failures = 0
            end = trace.run_end
            if end is not None and end.get("final_cost") is not None:
                rebuilt = reconstructed_cost(end)
                if rebuilt is not None and rebuilt != end["final_cost"]:
                    print(
                        f"{args.trace}: cost reconstruction mismatch: "
                        f"recorded {end['final_cost']!r}, rebuilt {rebuilt!r}",
                        file=sys.stderr,
                    )
                    failures += 1
            snapshots = trace.of_type("snapshot")
            for position, event in enumerate(snapshots):
                for problem in validate_snapshot(event.get("snapshot")):
                    print(
                        f"{args.trace}: snapshot event {position}: {problem}",
                        file=sys.stderr,
                    )
                    failures += 1
            if snapshots:
                print(
                    f"{args.trace}: {len(snapshots)} snapshot events "
                    "deep-checked (schema + attribution/occupancy invariants)"
                )
            anomalies = find_anomalies(trace)
            for anomaly in anomalies:
                print(f"{args.trace}: anomaly: {anomaly}")
            stages = len(trace.stages)
            status = "ok" if not failures else "INVALID"
            print(
                f"{args.trace}: {status} "
                f"({len(trace.events)} events, {stages} stages, "
                f"{len(anomalies)} anomalies)"
            )
            return 1 if failures else 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


# ----------------------------------------------------------------------
# Layout x-ray CLI (``repro-fpga xray``)
# ----------------------------------------------------------------------
def _load_snapshot(path: str, stage: Optional[int] = None) -> dict:
    """Load a snapshot from a JSON file or from a JSONL trace.

    A snapshot file is one JSON object; a trace is JSONL whose
    ``snapshot`` events carry payloads.  ``stage`` selects a specific
    in-trace snapshot by its ``stage`` field (default: the last one).
    Raises ``ValueError`` when no usable snapshot is found; the caller
    validates the payload.
    """
    import json

    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "channels" not in payload:
            raise ValueError(
                f"{path}: JSON object is not a layout snapshot "
                "(no 'channels' field)"
            )
        return payload

    trace = read_trace(Path(path))
    events = trace.of_type("snapshot")
    if not events:
        raise ValueError(f"{path}: trace contains no snapshot events")
    if stage is not None:
        for event in events:
            if event.get("stage") == stage:
                return event.get("snapshot", {})
        stages = [event.get("stage") for event in events]
        raise ValueError(
            f"{path}: no snapshot at stage {stage} (available: {stages})"
        )
    return events[-1].get("snapshot", {})


def _checked_snapshot(path: str, stage: Optional[int]) -> dict:
    payload = _load_snapshot(path, stage)
    problems = validate_snapshot(payload)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return payload


def build_xray_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the xray CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga xray",
        description="Render and compare layout snapshots: channel-density "
        "heatmaps, critical-path attribution, SVG floorplans "
        "(see docs/OBSERVABILITY.md, 'Spatial observability')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser(
        "show", help="terminal report: summary, heatmap, critical path"
    )
    p_show.add_argument(
        "snapshot", help="snapshot JSON file, or a JSONL trace with "
        "snapshot events",
    )
    p_show.add_argument(
        "--stage", type=int, default=None,
        help="pick the in-trace snapshot with this stage index "
        "(default: the last snapshot)",
    )
    p_show.add_argument(
        "--width", type=int, default=72,
        help="heatmap width in characters (default: 72)",
    )

    p_svg = sub.add_parser("svg", help="export an SVG floorplan view")
    p_svg.add_argument("snapshot", help="snapshot JSON file or JSONL trace")
    p_svg.add_argument(
        "--stage", type=int, default=None,
        help="pick the in-trace snapshot with this stage index",
    )
    p_svg.add_argument(
        "--out", default=None,
        help="output file (default: <snapshot>.svg; '-' for stdout)",
    )

    p_diff = sub.add_parser(
        "diff", help="align two snapshots by net/cell name and report "
        "congestion, path, and placement deltas",
    )
    p_diff.add_argument("snapshot_a", help="first snapshot (JSON or trace)")
    p_diff.add_argument("snapshot_b", help="second snapshot (JSON or trace)")
    p_diff.add_argument("--stage-a", type=int, default=None)
    p_diff.add_argument("--stage-b", type=int, default=None)
    return parser


def xray_main(argv: Optional[Sequence[str]] = None) -> int:
    """Xray CLI entry point; returns a process exit code."""
    parser = build_xray_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "show":
            payload = _checked_snapshot(args.snapshot, args.stage)
            print(render_snapshot(payload, width=args.width))
            return 0

        if args.command == "svg":
            payload = _checked_snapshot(args.snapshot, args.stage)
            svg = render_svg(payload)
            if args.out == "-":
                print(svg)
                return 0
            out = Path(args.out) if args.out else Path(
                args.snapshot
            ).with_suffix(".svg")
            out.write_text(svg + "\n", encoding="utf-8")
            print(f"wrote {out}")
            return 0

        if args.command == "diff":
            a = _checked_snapshot(args.snapshot_a, args.stage_a)
            b = _checked_snapshot(args.snapshot_b, args.stage_b)
            print(f"A: {args.snapshot_a}")
            print(f"B: {args.snapshot_b}")
            print(render_diff(diff_snapshots(a, b)))
            return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":
    sys.exit(main())

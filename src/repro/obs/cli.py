"""Command line for trace tooling: ``python -m repro.obs <cmd>``.

Also reachable as ``repro-fpga trace <cmd>`` from the main CLI.
Exit codes: 0 = ok, 1 = problems found (invalid trace / cost-
reconstruction mismatch), 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .events import RunTrace, read_trace, reconstructed_cost
from .snapshot import diff_snapshots, validate_snapshot
from .summary import diff_traces, find_anomalies, summarize
from .xray import render_diff, render_snapshot, render_svg


def render_json(payload: object) -> str:
    """The one machine-readable JSON shape every subcommand shares.

    Sorted keys and two-space indent, so ``runs show``, ``runs list
    --format json``, and ``watch --json`` all emit byte-stable output
    scripts can diff.
    """
    import json

    return json.dumps(payload, indent=2, sort_keys=True)


def _load(path: str) -> RunTrace:
    trace = read_trace(Path(path))
    problems = trace.validate()
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return trace


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the trace CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga trace",
        description="Summarize, diff, and validate anneal traces "
        "(see docs/OBSERVABILITY.md)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser(
        "summary", help="render one trace as tables and sparklines"
    )
    p_summary.add_argument("trace", help="JSONL trace file")
    p_summary.add_argument(
        "--max-rows", type=int, default=12,
        help="max rows in the per-stage table (default: 12)",
    )

    p_diff = sub.add_parser(
        "diff", help="compare two traces stage by stage"
    )
    p_diff.add_argument("trace_a", help="first JSONL trace file")
    p_diff.add_argument("trace_b", help="second JSONL trace file")

    p_validate = sub.add_parser(
        "validate",
        help="check a trace against the event schema and the "
        "cost-reconstruction invariant",
    )
    p_validate.add_argument("trace", help="JSONL trace file")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Trace CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "summary":
            trace = _load(args.trace)
            print(summarize(trace, max_rows=args.max_rows))
            return 0

        if args.command == "diff":
            a = _load(args.trace_a)
            b = _load(args.trace_b)
            print(f"A: {args.trace_a}")
            print(f"B: {args.trace_b}")
            print(diff_traces(a, b))
            return 0

        if args.command == "validate":
            trace = _load(args.trace)  # exits 1 on schema problems
            failures = 0
            end = trace.run_end
            if end is not None and end.get("final_cost") is not None:
                rebuilt = reconstructed_cost(end)
                if rebuilt is not None and rebuilt != end["final_cost"]:
                    print(
                        f"{args.trace}: cost reconstruction mismatch: "
                        f"recorded {end['final_cost']!r}, rebuilt {rebuilt!r}",
                        file=sys.stderr,
                    )
                    failures += 1
            snapshots = trace.of_type("snapshot")
            for position, event in enumerate(snapshots):
                for problem in validate_snapshot(event.get("snapshot")):
                    print(
                        f"{args.trace}: snapshot event {position}: {problem}",
                        file=sys.stderr,
                    )
                    failures += 1
            if snapshots:
                print(
                    f"{args.trace}: {len(snapshots)} snapshot events "
                    "deep-checked (schema + attribution/occupancy invariants)"
                )
            anomalies = find_anomalies(trace)
            for anomaly in anomalies:
                print(f"{args.trace}: anomaly: {anomaly}")
            stages = len(trace.stages)
            status = "ok" if not failures else "INVALID"
            print(
                f"{args.trace}: {status} "
                f"({len(trace.events)} events, {stages} stages, "
                f"{len(anomalies)} anomalies)"
            )
            return 1 if failures else 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


# ----------------------------------------------------------------------
# Layout x-ray CLI (``repro-fpga xray``)
# ----------------------------------------------------------------------
def _load_snapshot(path: str, stage: Optional[int] = None) -> dict:
    """Load a snapshot from a JSON file or from a JSONL trace.

    A snapshot file is one JSON object; a trace is JSONL whose
    ``snapshot`` events carry payloads.  ``stage`` selects a specific
    in-trace snapshot by its ``stage`` field (default: the last one).
    Raises ``ValueError`` when no usable snapshot is found; the caller
    validates the payload.
    """
    import json

    text = Path(path).read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict):
        if "channels" not in payload:
            raise ValueError(
                f"{path}: JSON object is not a layout snapshot "
                "(no 'channels' field)"
            )
        return payload

    trace = read_trace(Path(path))
    events = trace.of_type("snapshot")
    if not events:
        raise ValueError(f"{path}: trace contains no snapshot events")
    if stage is not None:
        for event in events:
            if event.get("stage") == stage:
                return event.get("snapshot", {})
        stages = [event.get("stage") for event in events]
        raise ValueError(
            f"{path}: no snapshot at stage {stage} (available: {stages})"
        )
    return events[-1].get("snapshot", {})


def _checked_snapshot(path: str, stage: Optional[int]) -> dict:
    payload = _load_snapshot(path, stage)
    problems = validate_snapshot(payload)
    if problems:
        for problem in problems:
            print(f"{path}: {problem}", file=sys.stderr)
        raise SystemExit(1)
    return payload


def build_xray_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the xray CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga xray",
        description="Render and compare layout snapshots: channel-density "
        "heatmaps, critical-path attribution, SVG floorplans "
        "(see docs/OBSERVABILITY.md, 'Spatial observability')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_show = sub.add_parser(
        "show", help="terminal report: summary, heatmap, critical path"
    )
    p_show.add_argument(
        "snapshot", help="snapshot JSON file, or a JSONL trace with "
        "snapshot events",
    )
    p_show.add_argument(
        "--stage", type=int, default=None,
        help="pick the in-trace snapshot with this stage index "
        "(default: the last snapshot)",
    )
    p_show.add_argument(
        "--width", type=int, default=72,
        help="heatmap width in characters (default: 72)",
    )

    p_svg = sub.add_parser("svg", help="export an SVG floorplan view")
    p_svg.add_argument("snapshot", help="snapshot JSON file or JSONL trace")
    p_svg.add_argument(
        "--stage", type=int, default=None,
        help="pick the in-trace snapshot with this stage index",
    )
    p_svg.add_argument(
        "--out", default=None,
        help="output file (default: <snapshot>.svg; '-' for stdout)",
    )

    p_diff = sub.add_parser(
        "diff", help="align two snapshots by net/cell name and report "
        "congestion, path, and placement deltas",
    )
    p_diff.add_argument("snapshot_a", help="first snapshot (JSON or trace)")
    p_diff.add_argument("snapshot_b", help="second snapshot (JSON or trace)")
    p_diff.add_argument("--stage-a", type=int, default=None)
    p_diff.add_argument("--stage-b", type=int, default=None)
    return parser


def xray_main(argv: Optional[Sequence[str]] = None) -> int:
    """Xray CLI entry point; returns a process exit code."""
    parser = build_xray_parser()
    args = parser.parse_args(argv)

    try:
        if args.command == "show":
            payload = _checked_snapshot(args.snapshot, args.stage)
            print(render_snapshot(payload, width=args.width))
            return 0

        if args.command == "svg":
            payload = _checked_snapshot(args.snapshot, args.stage)
            svg = render_svg(payload)
            if args.out == "-":
                print(svg)
                return 0
            out = Path(args.out) if args.out else Path(
                args.snapshot
            ).with_suffix(".svg")
            out.write_text(svg + "\n", encoding="utf-8")
            print(f"wrote {out}")
            return 0

        if args.command == "diff":
            a = _checked_snapshot(args.snapshot_a, args.stage_a)
            b = _checked_snapshot(args.snapshot_b, args.stage_b)
            print(f"A: {args.snapshot_a}")
            print(f"B: {args.snapshot_b}")
            print(render_diff(diff_snapshots(a, b)))
            return 0
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 2


# ----------------------------------------------------------------------
# Run ledger CLI (``repro-fpga runs``)
# ----------------------------------------------------------------------
#: Typed exit codes for the runs CLI (CI keys off these).
RUNS_EXIT_OK = 0
RUNS_EXIT_REGRESSION = 1
RUNS_EXIT_USAGE = 2
RUNS_EXIT_NO_DATA = 3
RUNS_EXIT_LEDGER = 4


def _add_slice_filters(parser: argparse.ArgumentParser) -> None:
    """The shared record-slice selectors (None = don't filter)."""
    parser.add_argument("--design", default=None, help="netlist name")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--flow", default=None, help="simultaneous / sequential"
    )
    parser.add_argument("--tag", default=None, help="user tag on the record")
    parser.add_argument(
        "--digest", default=None, help="full config digest (exact knobs)"
    )
    parser.add_argument(
        "--family", default=None,
        help="seed-independent family digest (same experiment, any seed)",
    )
    parser.add_argument("--core", default=None, help="array / legacy")


def _sliced(args: argparse.Namespace, records: list) -> list:
    from .ledger import select

    return select(
        records, design=args.design, seed=args.seed, flow=args.flow,
        tag=args.tag, digest=args.digest, family=args.family, core=args.core,
    )


def _sliced_indices(args: argparse.Namespace, records: list) -> list[int]:
    """Ledger positions of the matching records (duplicate-safe)."""
    matching = _sliced(args, records)
    indices: list[int] = []
    cursor = 0
    for record in matching:
        # select() preserves order, so scan forward by object identity.
        while records[cursor] is not record:
            cursor += 1
        indices.append(cursor)
        cursor += 1
    return indices


def _read_checked(path: str):
    """Load a ledger, translating damage into the typed exit code."""
    from .ledger import LedgerError, read_ledger

    try:
        ledger = read_ledger(path)
    except LedgerError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(RUNS_EXIT_LEDGER) from None
    for problem in ledger.problems:
        print(f"warning: {path}: {problem}", file=sys.stderr)
    return ledger


def _load_run_traces(ledger) -> dict[int, RunTrace]:
    """Traces for every record whose trace artifact is present on disk.

    Missing or unreadable artifacts degrade to absent entries (the
    report renders "no convergence data") rather than failing the
    command — a ledger routinely outlives its run directories.
    """
    from .ledger import resolve_artifact

    traces: dict[int, RunTrace] = {}
    for index, record in enumerate(ledger.records):
        artifact = (record.get("artifacts") or {}).get("trace")
        if not artifact:
            continue
        path = resolve_artifact(ledger.path, artifact)
        try:
            traces[index] = read_trace(path)
        except (OSError, ValueError):
            continue
    return traces


def build_runs_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the runs CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga runs",
        description="Cross-run analytics over an append-only run ledger: "
        "list/show records, compare convergence across seeds, gate "
        "regressions, render the HTML observatory "
        "(see docs/OBSERVABILITY.md, 'Cross-run observability')",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="one-line-per-run ledger table")
    p_list.add_argument("ledger", help="JSONL ledger file")
    _add_slice_filters(p_list)
    p_list.add_argument(
        "--format", choices=("table", "json"), default="table",
        help="output format: human table or machine-readable JSON "
        "(sorted keys, matching 'runs show'; default: table)",
    )

    p_show = sub.add_parser("show", help="dump one record in full")
    p_show.add_argument("ledger", help="JSONL ledger file")
    p_show.add_argument(
        "index", type=int, help="record position (from 'runs list')"
    )

    p_compare = sub.add_parser(
        "compare",
        help="align convergence, acceptance, and per-seed variance "
        "across a record slice",
    )
    p_compare.add_argument("ledger", help="JSONL ledger file")
    _add_slice_filters(p_compare)

    p_regress = sub.add_parser(
        "regress",
        help="BENCH_moves-style gate between two ledger slices "
        "(exit 1 = regression)",
    )
    p_regress.add_argument("ledger", help="candidate ledger")
    _add_slice_filters(p_regress)
    p_regress.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline ledger file (default: the candidate ledger itself, "
        "sliced by --baseline-tag)",
    )
    p_regress.add_argument(
        "--baseline-tag", default=None, metavar="TAG",
        help="slice the baseline by this tag instead of --tag",
    )
    p_regress.add_argument(
        "--max-score-regression", type=float, default=0.30,
        help="normalized_score best-of regression limit (default: 0.30)",
    )
    p_regress.add_argument(
        "--max-delay-regression", type=float, default=0.05,
        help="worst_delay_ns mean worsening limit (default: 0.05)",
    )
    p_regress.add_argument(
        "--max-overhead", type=float, default=0.05,
        help="instrumentation overhead fraction limit (default: 0.05)",
    )

    p_report = sub.add_parser(
        "report", help="render the self-contained HTML observatory"
    )
    p_report.add_argument("ledger", help="JSONL ledger file")
    _add_slice_filters(p_report)
    p_report.add_argument(
        "--out", default=None,
        help="output HTML file (default: <ledger>.html; '-' for stdout)",
    )
    p_report.add_argument(
        "--title", default="Run ledger observatory",
        help="page title (default: 'Run ledger observatory')",
    )
    return parser


def _runs_list(args: argparse.Namespace) -> int:
    from ..analysis.report import format_table

    ledger = _read_checked(args.ledger)
    indices = _sliced_indices(args, ledger.records)
    if not indices:
        print("no matching records", file=sys.stderr)
        return RUNS_EXIT_NO_DATA
    if args.format == "json":
        print(render_json([
            {"index": index, "record": ledger.records[index]}
            for index in indices
        ]))
        return RUNS_EXIT_OK
    rows = []
    for index in indices:
        record = ledger.records[index]
        terms = record.get("terms") or {}
        rows.append([
            index, record.get("flow"), record.get("design"),
            record.get("seed"), record.get("core") or "-",
            record.get("config_digest", "-")[:8],
            terms.get("G"), terms.get("D"),
            record.get("worst_delay_ns"),
            "yes" if record.get("fully_routed") else "NO",
            record.get("moves_per_sec"),
            record.get("tag") or "-",
        ])
    print(format_table(
        ["#", "flow", "design", "seed", "core", "config", "G", "D",
         "T (ns)", "routed", "moves/s", "tag"],
        rows, title=f"{args.ledger}: {len(indices)} records", decimals=4,
    ))
    return RUNS_EXIT_OK


def _runs_show(args: argparse.Namespace) -> int:
    import json

    ledger = _read_checked(args.ledger)
    if not 0 <= args.index < len(ledger.records):
        print(
            f"error: record {args.index} out of range "
            f"(ledger has {len(ledger.records)})",
            file=sys.stderr,
        )
        return RUNS_EXIT_NO_DATA
    print(render_json(ledger.records[args.index]))
    return RUNS_EXIT_OK


def _runs_compare(args: argparse.Namespace) -> int:
    from ..analysis.report import format_table
    from .ledger import slice_stats
    from .report import acceptance_series, convergence_series
    from .summary import sparkline

    ledger = _read_checked(args.ledger)
    indices = _sliced_indices(args, ledger.records)
    records = [ledger.records[i] for i in indices]
    if not records:
        print("no matching records", file=sys.stderr)
        return RUNS_EXIT_NO_DATA
    wanted = set(indices)
    traces = {
        i: t for i, t in _load_run_traces(ledger).items() if i in wanted
    }

    # Convergence + acceptance trajectories, one sparkline per run.
    print(f"{args.ledger}: comparing {len(records)} records "
          f"({len(traces)} with traces on disk)")
    for index in indices:
        record = ledger.records[index]
        label = (
            f"#{index} {record.get('flow')}/{record.get('design')} "
            f"seed={record.get('seed')}"
        )
        trace = traces.get(index)
        if trace is None:
            print(f"  {label}: no trace artifact")
            continue
        _, costs = convergence_series(trace)
        acceptance = acceptance_series(trace)
        if costs:
            print(f"  {label}")
            print(f"    cost        {sparkline(costs)}  "
                  f"[{min(costs):.4g}, {max(costs):.4g}]")
        if acceptance:
            print(f"    acceptance  {sparkline(acceptance)}  "
                  f"[{min(acceptance):.4g}, {max(acceptance):.4g}]")

    # Per-seed variance grouped by (flow, design, family).
    buckets: dict[tuple, list[dict]] = {}
    for record in records:
        key = (
            str(record.get("flow")), str(record.get("design")),
            str(record.get("family_digest")
                or record.get("config_digest") or "(none)"),
        )
        buckets.setdefault(key, []).append(record)
    rows = []
    for (flow, design, family), group in sorted(buckets.items()):
        stats = slice_stats(group)
        rows.append([
            f"{flow}/{design}", family[:8], stats["runs"],
            stats["delay_mean"], stats["delay_stdev"],
            stats["delay_min"], stats["delay_max"],
            f"{stats['routed_fraction']:.0%}",
        ])
    print(format_table(
        ["slice", "family", "runs", "T mean", "T stdev", "T min",
         "T max", "routed"],
        rows, title="per-seed variance (worst_delay_ns)", decimals=4,
    ))
    return RUNS_EXIT_OK


def _runs_regress(args: argparse.Namespace) -> int:
    from ..analysis.report import format_table
    from .ledger import regress_slices, select

    candidate_ledger = _read_checked(args.ledger)
    candidate = _sliced(args, candidate_ledger.records)
    if args.baseline is not None:
        baseline_records = _read_checked(args.baseline).records
    else:
        baseline_records = candidate_ledger.records
    if args.baseline_tag is not None:
        baseline = select(
            baseline_records, design=args.design, seed=args.seed,
            flow=args.flow, tag=args.baseline_tag, digest=args.digest,
            family=args.family, core=args.core,
        )
    elif args.baseline is not None:
        baseline = select(
            baseline_records, design=args.design, seed=args.seed,
            flow=args.flow, tag=None, digest=args.digest,
            family=args.family, core=args.core,
        )
    else:
        print(
            "error: --baseline PATH or --baseline-tag TAG is required "
            "(a slice cannot gate against itself)",
            file=sys.stderr,
        )
        return RUNS_EXIT_USAGE
    if not baseline or not candidate:
        side = "baseline" if not baseline else "candidate"
        print(f"no {side} records to gate on", file=sys.stderr)
        return RUNS_EXIT_NO_DATA
    rows, failures = regress_slices(
        baseline, candidate,
        max_score_regression=args.max_score_regression,
        max_delay_regression=args.max_delay_regression,
        max_overhead=args.max_overhead,
    )
    print(format_table(
        ["flow/design", "T base", "T cand", "score base", "score cand",
         "verdict"],
        rows,
        title=f"regression gate: {len(baseline)} baseline vs "
        f"{len(candidate)} candidate records",
        decimals=4,
    ))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if failures:
        return RUNS_EXIT_REGRESSION
    print("gate: ok")
    return RUNS_EXIT_OK


def _runs_report(args: argparse.Namespace) -> int:
    from .report import render_report

    ledger = _read_checked(args.ledger)
    indices = _sliced_indices(args, ledger.records)
    records = [ledger.records[i] for i in indices]
    if not records:
        print("no matching records", file=sys.stderr)
        return RUNS_EXIT_NO_DATA
    remap = {original: new for new, original in enumerate(indices)}
    traces = {
        remap[i]: t for i, t in _load_run_traces(ledger).items()
        if i in remap
    }
    html = render_report(records, traces, title=args.title)
    if args.out == "-":
        print(html, end="")
        return RUNS_EXIT_OK
    out = Path(args.out) if args.out else Path(
        args.ledger
    ).with_suffix(".html")
    out.write_text(html, encoding="utf-8")
    print(f"wrote {out} ({len(records)} records, {len(traces)} traces)")
    return RUNS_EXIT_OK


def runs_main(argv: Optional[Sequence[str]] = None) -> int:
    """Runs CLI entry point; returns a typed exit code."""
    parser = build_runs_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _runs_list,
        "show": _runs_show,
        "compare": _runs_compare,
        "regress": _runs_regress,
        "report": _runs_report,
    }
    try:
        return handlers[args.command](args)
    except SystemExit as exc:  # _read_checked signals damage this way
        return exc.code if isinstance(exc.code, int) else RUNS_EXIT_LEDGER
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return RUNS_EXIT_LEDGER


# ---------------------------------------------------------------------------
# `repro-fpga watch` — live dashboard + stall watchdog over a running anneal.
# ---------------------------------------------------------------------------
WATCH_EXIT_OK = 0        # run completed with no anomaly alarms
WATCH_EXIT_ANOMALY = 1   # run completed but dynamics detectors fired
WATCH_EXIT_USAGE = 2     # bad arguments (argparse's own code)
WATCH_EXIT_STALLED = 6   # heartbeat lost / run never started / --timeout hit


def build_watch_parser() -> argparse.ArgumentParser:
    """CLI surface for the live watcher."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga watch",
        description="Follow a live run through its trace stream and "
        "heartbeat sidecar: dashboard by default, single snapshot with "
        "--once, CI watchdog with --gate (exit 0 completed-ok, "
        "1 anomaly, 6 stalled).",
    )
    parser.add_argument(
        "trace",
        help="trace JSONL the run streams into (repro-fpga run "
        "--trace PATH --heartbeat)",
    )
    parser.add_argument(
        "--heartbeat", default=None, metavar="PATH",
        help="heartbeat sidecar path (default: <trace>.hb)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="poll/redraw interval in seconds (default: 2)",
    )
    parser.add_argument(
        "--stall-timeout", type=float, default=30.0, metavar="S",
        help="declare the run stalled when the heartbeat is older than "
        "this, or when no artifact appears at all for this long "
        "(default: 30)",
    )
    parser.add_argument(
        "--timeout", type=float, default=0.0, metavar="S",
        help="overall wall budget for the watch itself; a run still "
        "unfinished after this long exits stalled. 0 disables "
        "(default: 0)",
    )
    parser.add_argument(
        "--plateau-stages", type=int, default=8, metavar="N",
        help="consecutive near-flat stages before the cost-plateau "
        "anomaly fires (default: 8)",
    )
    parser.add_argument(
        "--max-rows", type=int, default=8, metavar="N",
        help="stage-table rows in the dashboard (default: 8)",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="poll once, render, and exit with the typed status code",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit the watch state as JSON (sorted keys) instead of "
        "the dashboard",
    )
    parser.add_argument(
        "--gate", action="store_true",
        help="watchdog mode: no dashboard, print new alarms to stderr, "
        "exit when the run completes or stalls",
    )
    return parser


def _emit_watch_state(state, trace, args: argparse.Namespace) -> None:
    """One frame of output: JSON snapshot or rendered dashboard."""
    from .live import render_watch_trace

    if args.as_json:
        print(render_json(state.to_dict()))
    else:
        if not (args.once or args.gate) and sys.stdout.isatty():
            # Live redraw: clear between frames so the dashboard
            # overwrites itself instead of scrolling.
            sys.stdout.write("\x1b[2J\x1b[H")
        print(render_watch_trace(state, trace, max_rows=args.max_rows))


def _watch_exit_code(state) -> int:
    if state.stalled:
        return WATCH_EXIT_STALLED
    if state.anomalous:
        return WATCH_EXIT_ANOMALY
    return WATCH_EXIT_OK


def watch_main(argv: Optional[Sequence[str]] = None) -> int:
    """Watch CLI entry point; returns a typed exit code."""
    # Watcher pacing runs on the monotonic clock and sleep only; the
    # deterministic run being observed never sees this process.
    import time

    from .live import Alarm, AnomalyEngine, TraceFollower, heartbeat_path, \
        watch_once

    parser = build_watch_parser()
    args = parser.parse_args(argv)
    if args.interval <= 0:
        parser.error("--interval must be > 0")
    if args.stall_timeout <= 0:
        parser.error("--stall-timeout must be > 0")

    hb_path = args.heartbeat or str(heartbeat_path(args.trace))
    follower = TraceFollower(args.trace)
    engine = AnomalyEngine(
        stall_after_s=args.stall_timeout,
        plateau_stages=args.plateau_stages,
    )

    started = time.monotonic()
    last_progress = started
    progress_key: Optional[tuple] = None
    try:
        while True:
            state = watch_once(follower, hb_path, engine)
            key = (state.events, (state.heartbeat or {}).get("seq"))
            if key != progress_key:
                progress_key = key
                last_progress = time.monotonic()
            finished = state.status == "completed"
            # Age-based stall detection needs a heartbeat file to age;
            # when none ever appears (run died before its first beat,
            # or was never launched) the watcher keeps its own clock.
            if not finished and not state.stalled \
                    and state.heartbeat is None \
                    and time.monotonic() - last_progress \
                    > args.stall_timeout:
                state.alarms.append(Alarm(
                    "stall",
                    f"no heartbeat or trace progress for "
                    f"{args.stall_timeout:.0f}s; the run never started "
                    f"or died before its first beat",
                ))
                state.status = "stalled"
            if args.timeout and not finished and not state.stalled \
                    and time.monotonic() - started > args.timeout:
                state.alarms.append(Alarm(
                    "stall",
                    f"watch timeout: run still unfinished after "
                    f"{args.timeout:.0f}s",
                ))
                state.status = "stalled"
            if args.once or finished or state.stalled:
                _emit_watch_state(state, follower.trace, args)
                return _watch_exit_code(state)
            if args.gate:
                for alarm in engine.fresh:
                    print(
                        f"[{alarm.kind}] {alarm.message}", file=sys.stderr
                    )
            else:
                _emit_watch_state(state, follower.trace, args)
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())

"""Module entry point: ``python -m repro.obs summary trace.jsonl``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())

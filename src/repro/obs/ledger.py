"""The run ledger: a persistent, append-only record of anneal runs.

Every observability layer so far (trace, snapshot, xray) sees exactly
one run; the ledger is the *population* view.  Each completed flow or
benchmark appends one schema-versioned JSON record to a JSONL file,
and the ``repro-fpga runs`` CLI (``list``/``show``/``compare``/
``regress``/``report``) answers cross-run questions from it: per-seed
variance, convergence alignment, throughput/QoR regressions between
two slices, and a self-contained HTML observatory
(:mod:`repro.obs.report`).

Record identity
---------------
``record_digest`` is a sha256 over the record's *identity* fields —
flow, design, netlist stats, seed, config digests, core, final cost
terms, routedness, and move counts.  Wall-clock-derived telemetry
(``wall_time_s``, ``moves_per_sec``, ``normalized_score``, overhead
ratios, per-section profiles), artifact paths, and user tags are
:data:`VOLATILE_FIELDS`, deliberately outside the digest: two runs of
the same code with the same seed produce the *same* identity no matter
how slow the host was.  Ledger recording happens strictly after the
run (a pure read of already-computed results — no RNG, no clock reads
feeding the anneal), so a ledger-recording run stays bit-identical to
an unrecorded one; ``tests/test_ledger.py`` pins both properties.

Durability
----------
Appends rewrite the whole file through
:func:`repro.resilience.atomic.atomic_write_text`, so a crash can
never tear a record mid-line under the real name.  Ledgers written by
other tools (or torn by a genuinely non-atomic ``>>`` append) degrade
gracefully: :func:`read_ledger` tolerates a truncated *final* line —
the signature of a torn append — reporting it as a problem while
keeping every complete record, and raises :class:`LedgerError` for
corruption anywhere else.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from .tracer import config_digest

#: Version of the record vocabulary.  Adding optional fields is
#: compatible; removing or re-interpreting a field requires a bump.
LEDGER_SCHEMA_VERSION = 1

#: Record fields excluded from ``record_digest``: telemetry derived
#: from the wall clock, artifact paths, and user-facing labels.  Two
#: identical trajectories must collide on identity regardless of host
#: speed or where their artifacts landed.
VOLATILE_FIELDS = (
    "wall_time_s",
    "moves_per_sec",
    "normalized_score",
    "overheads",
    "profile",
    "artifacts",
    "tag",
    "record_digest",
)

#: Config fields excluded from ``family_digest`` (the seed-independent
#: experiment identity): the seed itself, plus every knob proven not to
#: affect results — instrumentation, budgets, checkpointing, and the
#: bit-identical core/fast-path switches.  Mirrors the resilience
#: layer's ``NON_IDENTITY_FIELDS`` reasoning (see
#: :mod:`repro.resilience.checkpoint`) without importing it.
FAMILY_EXCLUDE = (
    "seed",
    "array_core",
    "fast_path",
    "profile",
    "trace",
    "trace_stream",
    "heartbeat_path",
    "heartbeat_min_interval_s",
    "sanitize",
    "sanitize_every",
    "snapshot_every",
    "checkpoint_path",
    "checkpoint_every",
    "max_seconds",
    "max_stages",
    "max_moves",
    "handle_signals",
)


class LedgerError(ValueError):
    """The ledger file is missing, corrupted, or not a ledger."""


@dataclass
class Ledger:
    """One loaded ledger: its records plus any recoverable problems."""

    path: Optional[Path] = None
    records: list[dict] = field(default_factory=list)
    #: Human-readable notes about tolerated damage (torn final line).
    problems: list[str] = field(default_factory=list)


# ----------------------------------------------------------------------
# Record construction
# ----------------------------------------------------------------------
def record_identity(record: dict) -> str:
    """16-hex sha256 over the record's identity fields.

    Volatile fields (:data:`VOLATILE_FIELDS`) are stripped first, so
    equality of digests means "same trajectory outcome", not "same
    wall clock".
    """
    identity = {
        key: value for key, value in record.items()
        if key not in VOLATILE_FIELDS
    }
    canonical = json.dumps(identity, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def make_record(
    *,
    flow: str,
    design: str,
    seed: Optional[int],
    worst_delay_ns: float,
    fully_routed: bool,
    config_digest: Optional[str] = None,
    family_digest: Optional[str] = None,
    core: Optional[str] = None,
    netlist: Optional[dict] = None,
    terms: Optional[dict] = None,
    final_cost: Optional[float] = None,
    moves_attempted: Optional[int] = None,
    moves_accepted: Optional[int] = None,
    temperatures: Optional[int] = None,
    wall_time_s: Optional[float] = None,
    moves_per_sec: Optional[float] = None,
    normalized_score: Optional[float] = None,
    overheads: Optional[dict] = None,
    profile: Optional[dict] = None,
    artifacts: Optional[dict] = None,
    tag: str = "",
) -> dict:
    """Assemble one ledger record and stamp its identity digest.

    Optional fields are omitted (not null-padded) so records stay
    compact and the identity digest only covers what a run actually
    reported.
    """
    record: dict = {
        "schema_version": LEDGER_SCHEMA_VERSION,
        "flow": flow,
        "design": design,
        "seed": seed,
        "worst_delay_ns": worst_delay_ns,
        "fully_routed": bool(fully_routed),
    }
    optional = (
        ("config_digest", config_digest),
        ("family_digest", family_digest),
        ("core", core),
        ("netlist", netlist),
        ("terms", terms),
        ("final_cost", final_cost),
        ("moves_attempted", moves_attempted),
        ("moves_accepted", moves_accepted),
        ("temperatures", temperatures),
        ("wall_time_s", wall_time_s),
        ("moves_per_sec", moves_per_sec),
        ("normalized_score", normalized_score),
        ("overheads", overheads),
        ("profile", profile),
        ("artifacts", artifacts),
    )
    for name, value in optional:
        if value is not None:
            record[name] = value
    if tag:
        record["tag"] = tag
    record["record_digest"] = record_identity(record)
    return record


def record_from_result(
    result: Any,
    config: Any = None,
    tag: str = "",
    artifacts: Optional[dict] = None,
    normalized_score: Optional[float] = None,
) -> dict:
    """Build a ledger record from a flow result.

    ``result`` is duck-typed to :class:`repro.flows.common.FlowResult`
    (``flow``/``design``/``metrics()``/``extra``/``wall_time_s``) so
    this module stays importable without :mod:`repro.flows`.  The flows
    stash ``seed``/``config_digest``/``family_digest``/``core`` in
    ``extra``; ``config`` is the fallback source when they are absent
    (e.g. a hand-rolled result).
    """
    extra = getattr(result, "extra", None) or {}
    metrics = result.metrics()
    seed = extra.get("seed")
    digest = extra.get("config_digest")
    family = extra.get("family_digest")
    if config is not None:
        if seed is None:
            seed = getattr(config, "seed", None)
        if digest is None:
            digest = config_digest(config)
        if family is None:
            family = config_digest(config, exclude=FAMILY_EXCLUDE)
    terms = {
        "G": metrics.get("global_unrouted"),
        "D": metrics.get("detail_unrouted"),
        "T": metrics.get("worst_delay_ns"),
    }
    final_cost = None
    trace = extra.get("trace")
    if trace is not None and trace.run_end is not None:
        final_cost = trace.run_end.get("final_cost")
    moves_attempted = extra.get("moves_attempted")
    wall = result.wall_time_s
    moves_per_sec = None
    if moves_attempted and wall and wall > 0:
        moves_per_sec = round(moves_attempted / wall, 1)
    profile = extra.get("profile")
    netlist_stats = extra.get("netlist")
    return make_record(
        flow=result.flow,
        design=result.design,
        seed=seed,
        config_digest=digest,
        family_digest=family,
        core=extra.get("core"),
        netlist=netlist_stats,
        terms=terms,
        final_cost=final_cost,
        worst_delay_ns=metrics["worst_delay_ns"],
        fully_routed=bool(metrics.get("fully_routed")),
        moves_attempted=moves_attempted,
        moves_accepted=extra.get("moves_accepted"),
        temperatures=extra.get("temperatures"),
        wall_time_s=round(wall, 4) if wall is not None else None,
        moves_per_sec=moves_per_sec,
        normalized_score=normalized_score,
        profile=profile.as_dict() if profile is not None else None,
        artifacts=artifacts or None,
        tag=tag,
    )


# ----------------------------------------------------------------------
# Persistence
# ----------------------------------------------------------------------
def append_record(path: Union[str, Path], record: dict) -> None:
    """Append one record to the ledger at ``path``, atomically.

    The whole file is rewritten through the atomic tmp+fsync+rename
    helper, so a crash mid-append leaves either the old ledger or the
    new one — never a torn line under the real name.
    """
    from ..resilience.atomic import atomic_write_text

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    existing = ""
    if path.exists():
        existing = path.read_text(encoding="utf-8")
        if existing and not existing.endswith("\n"):
            existing += "\n"
    line = json.dumps(record, sort_keys=True, separators=(",", ":"))
    atomic_write_text(path, existing + line + "\n", kind="ledger")


def read_ledger(path: Union[str, Path]) -> Ledger:
    """Load a ledger from disk.

    Raises :class:`LedgerError` when the file is missing or when any
    line *other than the last* is malformed (mid-file corruption is
    damage, not a torn append).  A malformed or truncated final line is
    tolerated — that is exactly what a crash during a non-atomic append
    leaves behind — and reported in :attr:`Ledger.problems`.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        raise LedgerError(f"{path}: no such ledger") from None
    except OSError as exc:
        raise LedgerError(f"{path}: unreadable ledger: {exc}") from exc
    ledger = Ledger(path=path)
    lines = [
        (number, line.strip())
        for number, line in enumerate(text.splitlines(), start=1)
        if line.strip()
    ]
    for position, (number, line) in enumerate(lines):
        last = position == len(lines) - 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if last:
                ledger.problems.append(
                    f"line {number}: torn final record dropped ({exc.msg})"
                )
                continue
            raise LedgerError(
                f"{path}:{number}: corrupted ledger record: {exc.msg}"
            ) from exc
        if not isinstance(record, dict):
            raise LedgerError(
                f"{path}:{number}: ledger record is not a JSON object"
            )
        ledger.records.append(record)
    return ledger


# ----------------------------------------------------------------------
# Selection and aggregation
# ----------------------------------------------------------------------
def select(
    records: list[dict],
    *,
    design: Optional[str] = None,
    seed: Optional[int] = None,
    flow: Optional[str] = None,
    tag: Optional[str] = None,
    digest: Optional[str] = None,
    family: Optional[str] = None,
    core: Optional[str] = None,
) -> list[dict]:
    """The records matching every given filter (None = don't care)."""
    out = []
    for record in records:
        if design is not None and record.get("design") != design:
            continue
        if seed is not None and record.get("seed") != seed:
            continue
        if flow is not None and record.get("flow") != flow:
            continue
        if tag is not None and record.get("tag", "") != tag:
            continue
        if digest is not None and record.get("config_digest") != digest:
            continue
        if family is not None and record.get("family_digest") != family:
            continue
        if core is not None and record.get("core") != core:
            continue
        out.append(record)
    return out


def group_records(records: list[dict], key: str) -> dict[str, list[dict]]:
    """Records bucketed by one field, in first-seen order.

    ``key`` may be any record field name; ``family`` and ``digest``
    alias their ``*_digest`` fields.  Missing values group under
    ``"(none)"``.
    """
    field_name = {
        "family": "family_digest", "digest": "config_digest",
    }.get(key, key)
    groups: dict[str, list[dict]] = {}
    for record in records:
        value = record.get(field_name)
        label = "(none)" if value in (None, "") else str(value)
        groups.setdefault(label, []).append(record)
    return groups


def slice_stats(records: list[dict]) -> dict:
    """Aggregate QoR/throughput statistics over one record slice.

    ``delay_*`` summarize ``worst_delay_ns`` across the slice (the
    per-seed variance view); ``best_score`` is the best calibration-
    normalized throughput, matching the bench gate's best-of
    convention.
    """
    delays = [
        record["worst_delay_ns"] for record in records
        if record.get("worst_delay_ns") is not None
    ]
    scores = [
        record["normalized_score"] for record in records
        if record.get("normalized_score") is not None
    ]
    routed = [bool(record.get("fully_routed")) for record in records]
    n = len(delays)
    mean = sum(delays) / n if n else 0.0
    if n > 1:
        stdev = math.sqrt(sum((d - mean) ** 2 for d in delays) / (n - 1))
    else:
        stdev = 0.0
    return {
        "runs": len(records),
        "seeds": sorted({
            record.get("seed") for record in records
            if record.get("seed") is not None
        }),
        "delay_mean": mean,
        "delay_stdev": stdev,
        "delay_min": min(delays) if delays else 0.0,
        "delay_max": max(delays) if delays else 0.0,
        "routed_fraction": (
            sum(routed) / len(routed) if routed else 0.0
        ),
        "best_score": max(scores) if scores else None,
    }


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------
def regress_slices(
    baseline: list[dict],
    candidate: list[dict],
    *,
    max_score_regression: float = 0.30,
    max_delay_regression: float = 0.05,
    max_overhead: float = 0.05,
) -> tuple[list[list], list[str]]:
    """The BENCH_moves-style gate between two ledger slices.

    Records are paired by ``(flow, design)`` and each pair is judged on
    three axes, mirroring the standing benchmark gates:

    * **normalized_score** — best-of throughput may not regress by more
      than ``max_score_regression`` (calibration-normalized, so the
      comparison transfers across hosts);
    * **worst_delay_ns** — mean QoR may not worsen by more than
      ``max_delay_regression``;
    * **routedness** — a design fully routed in the baseline must stay
      fully routed;
    * **overhead ratios** — any recorded instrumentation overhead
      fraction (trace/snapshot/checkpoint/ledger) must stay at or
      under ``max_overhead``.

    Returns ``(rows, failures)``: comparison rows for display and the
    list of failed gates (empty = pass).  Designs present on only one
    side are reported as rows but never fail — the gate judges overlap.
    """
    def keyed(records: list[dict]) -> dict[tuple, list[dict]]:
        out: dict[tuple, list[dict]] = {}
        for record in records:
            out.setdefault(
                (record.get("flow"), record.get("design")), []
            ).append(record)
        return out

    base_groups, cand_groups = keyed(baseline), keyed(candidate)
    rows: list[list] = []
    failures: list[str] = []
    for key in sorted(
        set(base_groups) | set(cand_groups),
        key=lambda k: (str(k[0]), str(k[1])),
    ):
        flow, design = key
        name = f"{flow}/{design}"
        base = base_groups.get(key)
        cand = cand_groups.get(key)
        if base is None or cand is None:
            rows.append([name, "-", "-", "-", "-",
                         "baseline only" if cand is None else "candidate only"])
            continue
        bstats, cstats = slice_stats(base), slice_stats(cand)
        verdicts = []
        if bstats["best_score"] and cstats["best_score"]:
            regression = 1.0 - cstats["best_score"] / bstats["best_score"]
            if regression > max_score_regression:
                verdicts.append(
                    f"{name}: normalized_score regressed {regression:.1%} "
                    f"(limit {max_score_regression:.0%})"
                )
        if bstats["delay_mean"] > 0:
            worsening = (
                cstats["delay_mean"] / bstats["delay_mean"] - 1.0
            )
            if worsening > max_delay_regression:
                verdicts.append(
                    f"{name}: worst_delay_ns worsened {worsening:.1%} "
                    f"(limit {max_delay_regression:.0%})"
                )
        if bstats["routed_fraction"] >= 1.0 > cstats["routed_fraction"]:
            verdicts.append(
                f"{name}: lost full routing "
                f"({cstats['routed_fraction']:.0%} of candidate runs routed)"
            )
        for record in cand:
            for kind, info in sorted((record.get("overheads") or {}).items()):
                frac = (info or {}).get("overhead_frac")
                if frac is not None and frac > max_overhead:
                    verdicts.append(
                        f"{name}: {kind} overhead {frac:.1%} exceeds "
                        f"{max_overhead:.0%}"
                    )
        failures.extend(verdicts)
        rows.append([
            name,
            f"{bstats['delay_mean']:.4g}", f"{cstats['delay_mean']:.4g}",
            (f"{bstats['best_score']:.3f}"
             if bstats["best_score"] is not None else "-"),
            (f"{cstats['best_score']:.3f}"
             if cstats["best_score"] is not None else "-"),
            "FAIL" if verdicts else "ok",
        ])
    return rows, failures


def resolve_artifact(
    ledger_path: Optional[Union[str, Path]], artifact: str
) -> Path:
    """Artifact path resolved relative to the ledger's directory.

    Records store artifact paths as written (typically relative to
    where the run was launched); when a ledger travels with its
    artifacts, resolving against the ledger file keeps the links live.
    Absolute paths pass through untouched.
    """
    candidate = Path(artifact)
    if candidate.is_absolute() or ledger_path is None:
        return candidate
    return Path(ledger_path).parent / candidate

"""Live run observability: heartbeat sidecar, tail-follow trace reader,
and the incremental anomaly engine behind ``repro-fpga watch``.

Every other observability layer (traces, snapshots, the run ledger) is
post-hoc: a multi-hour anneal is a black box until ``run_end``.  This
module is the in-flight window, built from three cooperating pieces:

* :class:`HeartbeatWriter` — a small schema-versioned JSON sidecar
  (``<trace>.hb``) rewritten atomically at stage boundaries and at
  least every ``min_interval_s`` seconds mid-stage.  It carries the
  wall-clock telemetry deliberately kept *out* of the deterministic
  trace — pid, counters, acceptance, moves/sec, ETA, last checkpoint —
  following the ledger's ``VOLATILE_FIELDS`` discipline.  The writer
  reads only monotonic clocks (never ``time.time``), so a heartbeating
  run stays bit-identical to a plain run and the deep-lint
  transitive-nondeterminism rule stays clean; watchers derive beat age
  from the file's mtime on their own side.
* :class:`TraceFollower` — incremental JSONL tail-follow over a
  growing trace stream, tolerating torn final lines and rotation
  exactly like :class:`repro.obs.ledger.Ledger` tolerates a torn
  append: complete lines parse, the trailing partial line waits for
  the rest, damage is reported in ``.problems`` instead of raising.
* :class:`AnomalyEngine` — the per-detector functions refactored out
  of :func:`repro.obs.summary.find_anomalies` (stalled acceptance,
  weight oscillation, repair collapse) plus two live-only detectors:
  cost plateau and heartbeat loss — so alarms fire mid-run rather
  than at post-mortem.

:func:`watch_once` snapshots all three into a :class:`WatchState`;
:func:`render_watch` turns a state into the terminal dashboard the
``repro-fpga watch`` CLI redraws (sparklines via
:func:`repro.obs.summary.sparkline`).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from .events import RunTrace

#: Version of the heartbeat vocabulary.  Removing a field or changing a
#: field's meaning requires bumping this; adding optional fields does
#: not.  Readers reject other versions (a heartbeat is ephemeral, so
#: there is no migration story — just re-run the writer).
HEARTBEAT_SCHEMA_VERSION = 1

#: ``status`` values that mean the run is over (an ``interrupted: ...``
#: status is also terminal — budget stops and signals end the process).
_TERMINAL_STATUS_PREFIXES = ("completed", "interrupted")


def heartbeat_path(trace_path: Union[str, Path]) -> Path:
    """The conventional sidecar path for a trace: ``<trace>.hb``."""
    trace_path = Path(trace_path)
    return trace_path.with_name(trace_path.name + ".hb")


def heartbeat_terminal(payload: Optional[dict]) -> bool:
    """Whether a heartbeat payload declares the run finished."""
    if not isinstance(payload, dict):
        return False
    status = str(payload.get("status") or "")
    return status.startswith(_TERMINAL_STATUS_PREFIXES)


_LOCAL_HOST: Optional[str] = None


def local_host() -> str:
    """This machine's name, as heartbeat writers stamp it (cached).

    The same stamp scopes every pid recorded by this package (heartbeat
    payloads, the job journal's ``running`` events): a reader may only
    signal-0 probe — let alone kill — a pid it can prove was minted on
    its own machine.
    """
    global _LOCAL_HOST
    if _LOCAL_HOST is None:
        import socket

        _LOCAL_HOST = socket.gethostname()
    return _LOCAL_HOST


def pid_alive(pid) -> Optional[bool]:
    """Whether ``pid`` is a live process *on this host*.

    A signal-0 probe: ``True`` (alive, possibly owned by someone else),
    ``False`` (definitely gone), or ``None`` when this host cannot tell
    (bad pid value, exotic platform).  Never raises.
    """
    if not isinstance(pid, int) or isinstance(pid, bool) or pid <= 0:
        return None
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        # The process exists but belongs to another user.
        return True
    except (OSError, OverflowError):
        return None
    return True


def heartbeat_pid_dead(payload: Optional[dict]) -> bool:
    """Whether a heartbeat's writing process is provably dead.

    The mtime-age watchdog takes a full ``--stall-timeout`` to notice a
    dead run; this probe notices immediately — but only when it can be
    *sure*: the payload must carry a ``pid``, the heartbeat must have
    been written on this host (the ``host`` stamp matches, or predates
    the stamp entirely), and the signal-0 probe must come back
    definitively dead.  Every uncertain case returns False and leaves
    the verdict to the staleness clock.
    """
    if not isinstance(payload, dict):
        return False
    host = payload.get("host")
    if host is not None and host != local_host():
        return False  # written on another machine; pids don't transfer
    return pid_alive(payload.get("pid")) is False


class HeartbeatWriter:
    """Throttled atomic writer for one run's heartbeat sidecar.

    The annealer calls :meth:`beat` at stage boundaries and (guarded by
    :meth:`due`) every few hundred attempts mid-stage; the writer
    rewrites the sidecar at most once per ``min_interval_s`` unless
    forced (phase transitions and the final beat are forced so the
    terminal status always lands).  Telemetry assembly and the write
    are pure reads of already-computed values — no RNG, and only the
    monotonic clock — so heartbeating never perturbs the anneal.
    """

    __slots__ = ("path", "min_interval_s", "seq", "_last_beat")

    def __init__(
        self, path: Union[str, Path], min_interval_s: float = 2.0
    ) -> None:
        if min_interval_s <= 0:
            raise ValueError(
                f"min_interval_s must be > 0, got {min_interval_s}"
            )
        self.path = Path(path)
        self.min_interval_s = float(min_interval_s)
        self.seq = 0
        self._last_beat: Optional[float] = None

    def due(self) -> bool:
        """Whether the throttle window has elapsed since the last beat."""
        if self._last_beat is None:
            return True
        return time.monotonic() - self._last_beat >= self.min_interval_s

    def beat(self, telemetry: dict, force: bool = False) -> bool:
        """Write one heartbeat (skipped unless due or forced).

        Returns True when a beat was written.  ``telemetry`` is merged
        over the envelope (schema version, pid, sequence number), so a
        caller cannot accidentally shadow them.
        """
        if not force and not self.due():
            return False
        from ..resilience.atomic import atomic_write_text

        self.seq += 1
        payload = dict(telemetry)
        payload["schema_version"] = HEARTBEAT_SCHEMA_VERSION
        payload["pid"] = os.getpid()
        # The host stamp scopes the pid: a reader may only signal-0
        # probe a pid it knows was minted on its own machine.
        payload["host"] = local_host()
        payload["seq"] = self.seq
        # durable=False: beats are advisory — a crash leaving the
        # sidecar stale is exactly the watchdog's signal, and an fsync
        # per beat would dominate the cost of beating.  The tmp+rename
        # atomicity that protects readers from torn files is kept.
        atomic_write_text(
            self.path,
            json.dumps(payload, sort_keys=True) + "\n",
            kind="heartbeat",
            durable=False,
        )
        self._last_beat = time.monotonic()
        return True


def maybe_heartbeat(
    path: Optional[Union[str, Path]], min_interval_s: float = 2.0
) -> Optional[HeartbeatWriter]:
    """Writer when a path is configured, None otherwise (guarded-probe)."""
    if path is None:
        return None
    return HeartbeatWriter(path, min_interval_s)


def read_heartbeat(
    path: Union[str, Path],
) -> tuple[Optional[dict], list[str]]:
    """Load a heartbeat sidecar, degrading gracefully.

    Returns ``(payload, problems)``: a missing file, a zero-byte file
    (a torn non-atomic writer), malformed JSON, or an unsupported
    schema version all yield ``(None, [note])`` instead of raising —
    a watcher polls this between atomic replacements and must survive
    every intermediate state.
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except FileNotFoundError:
        return None, [f"{path}: no heartbeat file"]
    except OSError as exc:
        return None, [f"{path}: unreadable heartbeat ({exc})"]
    if not text.strip():
        return None, [f"{path}: zero-byte heartbeat (torn write?)"]
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        return None, [f"{path}: malformed heartbeat dropped ({exc.msg})"]
    if not isinstance(payload, dict):
        return None, [f"{path}: heartbeat is not a JSON object"]
    version = payload.get("schema_version")
    if version != HEARTBEAT_SCHEMA_VERSION:
        return None, [
            f"{path}: unsupported heartbeat schema_version {version!r} "
            f"(supported: {HEARTBEAT_SCHEMA_VERSION})"
        ]
    return payload, []


def heartbeat_age_s(path: Union[str, Path]) -> Optional[float]:
    """Seconds since the sidecar was last replaced (None when absent).

    This is the watcher's side of the no-wall-clock-in-the-writer
    bargain: the writer never stamps wall time into the payload, so
    staleness is derived here from the file's mtime.  The wall-clock
    read lives in watcher-only code, unreachable from the anneal.
    """
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    now = time.time()  # repro-lint: disable=nondeterministic-call
    return max(0.0, now - mtime)


# ----------------------------------------------------------------------
# Tail-follow trace reader
# ----------------------------------------------------------------------
class TraceFollower:
    """Incremental reader over a growing JSONL trace stream.

    Each :meth:`poll` reads the bytes appended since the previous poll,
    parses the complete lines into events, and buffers a torn final
    line until its remainder arrives.  Rotation/truncation (the file
    shrinking under the follower) restarts the follow from offset zero
    with a note in ``problems``; malformed complete lines are dropped
    with a note, mirroring :func:`repro.obs.ledger.read_ledger`'s
    damage tolerance.  ``trace`` always views every event parsed so
    far, so the summary detectors run on it directly.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.events: list[dict] = []
        self.trace = RunTrace(self.events)
        self.problems: list[str] = []
        self._offset = 0
        self._pending = b""

    def poll(self) -> list[dict]:
        """Consume newly-appended bytes; returns the fresh events."""
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return []
        if size < self._offset:
            self.problems.append(
                f"{self.path}: shrank from {self._offset} to {size} bytes "
                f"(rotated or truncated); restarting follow"
            )
            self._offset = 0
            self._pending = b""
            self.events.clear()
        if size == self._offset and not self._pending:
            return []
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError as exc:
            self.problems.append(f"{self.path}: read failed ({exc})")
            return []
        self._offset += len(chunk)
        buffer = self._pending + chunk
        lines = buffer.split(b"\n")
        # The final element is either empty (buffer ended on a newline)
        # or a torn line still being written — hold it for next poll.
        self._pending = lines.pop()
        fresh: list[dict] = []
        for raw in lines:
            line = raw.decode("utf-8", errors="replace").strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                self.problems.append(
                    f"{self.path}: malformed line dropped ({exc.msg})"
                )
                continue
            if not isinstance(event, dict):
                self.problems.append(
                    f"{self.path}: non-object line dropped"
                )
                continue
            self.events.append(event)
            fresh.append(event)
        return fresh


def follow_trace(path: Union[str, Path]) -> TraceFollower:
    """A fresh follower positioned at the start of ``path``."""
    return TraceFollower(path)


# ----------------------------------------------------------------------
# Incremental anomaly engine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Alarm:
    """One live finding: ``kind`` is ``"anomaly"`` (bad dynamics the
    run may still finish with) or ``"stall"`` (the run has stopped
    making observable progress — the watchdog's exit-6 family)."""

    kind: str
    message: str


class AnomalyEngine:
    """Runs the detector set over a (growing) trace plus the heartbeat.

    Dynamics detectors are the exact per-detector functions the
    post-hoc summary composes (:data:`repro.obs.summary.
    SUMMARY_DETECTORS`), plus the live-only cost-plateau detector.
    The heartbeat-loss detector turns sidecar staleness into a stall
    alarm — only while the run is still in flight; a finished run's
    heartbeat is allowed to age forever.  A pid-liveness probe
    (:func:`heartbeat_pid_dead`) short-circuits the staleness clock:
    when the heartbeat was written on this host and its pid is provably
    gone, the stall alarm fires immediately instead of after
    ``stall_after_s``.

    :meth:`scan` returns the full current alarm list and remembers
    which messages were already seen, so ``engine.fresh`` after a scan
    holds only the alarms that appeared on that poll (the dashboard's
    "new alarm" ticker).
    """

    def __init__(
        self,
        stall_after_s: float = 30.0,
        plateau_stages: int = 8,
        detectors: Optional[tuple[Callable[[RunTrace], list[str]], ...]] = None,
    ) -> None:
        from .summary import SUMMARY_DETECTORS, detect_cost_plateau

        if detectors is None:
            detectors = SUMMARY_DETECTORS + (
                lambda trace: detect_cost_plateau(
                    trace, min_stages=plateau_stages
                ),
            )
        self.detectors = detectors
        self.stall_after_s = float(stall_after_s)
        self.fresh: list[Alarm] = []
        self._seen: set[tuple[str, str]] = set()

    def scan(
        self,
        trace: RunTrace,
        heartbeat: Optional[dict] = None,
        heartbeat_age: Optional[float] = None,
        finished: bool = False,
    ) -> list[Alarm]:
        """All current alarms for one poll of the run's artifacts."""
        alarms = [
            Alarm("anomaly", message)
            for detector in self.detectors
            for message in detector(trace)
        ]
        finished = (
            finished
            or trace.run_end is not None
            or heartbeat_terminal(heartbeat)
        )
        if not finished and heartbeat_pid_dead(heartbeat):
            alarms.append(Alarm(
                "stall",
                f"process dead: heartbeat pid {heartbeat.get('pid')} is no "
                f"longer alive on this host and the run never reached a "
                f"terminal status",
            ))
        elif not finished and heartbeat_age is not None \
                and heartbeat_age > self.stall_after_s:
            alarms.append(Alarm(
                "stall",
                f"heartbeat lost: last beat {heartbeat_age:.1f}s ago "
                f"(stall threshold {self.stall_after_s:.0f}s); the run is "
                f"hung, killed, or starved",
            ))
        self.fresh = [
            alarm for alarm in alarms
            if (alarm.kind, alarm.message) not in self._seen
        ]
        self._seen.update(
            (alarm.kind, alarm.message) for alarm in alarms
        )
        return alarms


# ----------------------------------------------------------------------
# Watch snapshot
# ----------------------------------------------------------------------
@dataclass
class WatchState:
    """Everything one dashboard frame (or ``--json`` snapshot) shows."""

    trace_path: str
    heartbeat_path: str
    #: "waiting" (no artifacts yet), "running", "completed", "stalled".
    status: str
    heartbeat: Optional[dict] = None
    heartbeat_age_s: Optional[float] = None
    stages: int = 0
    events: int = 0
    alarms: list[Alarm] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def stalled(self) -> bool:
        return any(alarm.kind == "stall" for alarm in self.alarms)

    @property
    def anomalous(self) -> bool:
        return any(alarm.kind == "anomaly" for alarm in self.alarms)

    def to_dict(self) -> dict:
        """JSON-safe snapshot for ``watch --json`` (sorted by caller)."""
        return {
            "trace": self.trace_path,
            "heartbeat_path": self.heartbeat_path,
            "status": self.status,
            "heartbeat": self.heartbeat,
            "heartbeat_age_s": (
                round(self.heartbeat_age_s, 3)
                if self.heartbeat_age_s is not None else None
            ),
            "stages": self.stages,
            "events": self.events,
            "alarms": [
                {"kind": alarm.kind, "message": alarm.message}
                for alarm in self.alarms
            ],
            "problems": list(self.problems),
        }


def watch_once(
    follower: TraceFollower,
    hb_path: Union[str, Path],
    engine: AnomalyEngine,
) -> WatchState:
    """Poll the run's artifacts once and classify where the run stands."""
    follower.poll()
    trace = follower.trace
    heartbeat, hb_problems = read_heartbeat(hb_path)
    age = heartbeat_age_s(hb_path)
    finished = trace.run_end is not None or heartbeat_terminal(heartbeat)
    alarms = engine.scan(
        trace, heartbeat=heartbeat, heartbeat_age=age, finished=finished
    )
    if finished:
        status = "completed"
    elif any(alarm.kind == "stall" for alarm in alarms):
        status = "stalled"
    elif trace.events or heartbeat is not None:
        status = "running"
    else:
        status = "waiting"
    problems = list(follower.problems)
    # A missing heartbeat file is normal before the run opens and after
    # cleanup; report reader damage, not plain absence.
    if heartbeat is None and age is not None:
        problems.extend(hb_problems)
    return WatchState(
        trace_path=str(follower.path),
        heartbeat_path=str(hb_path),
        status=status,
        heartbeat=heartbeat,
        heartbeat_age_s=age,
        stages=len(trace.stages),
        events=len(trace.events),
        alarms=alarms,
        problems=problems,
    )


# ----------------------------------------------------------------------
# Dashboard rendering
# ----------------------------------------------------------------------
def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    value = float(value)
    if value >= 3600:
        return f"{value / 3600:.1f}h"
    if value >= 60:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


def render_watch(state: WatchState, max_rows: int = 8) -> str:
    """The state panel of one dashboard frame (no trace series).

    ``max_rows`` is accepted for symmetry with
    :func:`render_watch_trace`, which appends the per-stage table.
    """
    del max_rows
    parts: list[str] = []
    hb = state.heartbeat or {}
    header = (
        f"watch: {state.trace_path}  [{state.status}]"
    )
    parts.append(header)
    if hb:
        terms = hb.get("terms") or {}
        best = hb.get("best") or {}
        parts.append(
            f"run: flow={hb.get('flow', '?')} design={hb.get('design', '?')} "
            f"seed={hb.get('seed', '?')} pid={hb.get('pid', '?')} "
            f"phase={hb.get('phase', '?')} "
            f"stage={hb.get('stage', '?')}/{hb.get('stage_budget', '?')}"
        )
        parts.append(
            f"moves: {hb.get('moves_accepted', '?')}/"
            f"{hb.get('moves_attempted', '?')} accepted  "
            f"{hb.get('moves_per_sec', '?')} moves/s  "
            f"acceptance={hb.get('acceptance', '?')}"
        )
        def _terms_line(label: str, record: dict) -> str:
            return (
                f"{label}: G={record.get('G', '?')} D={record.get('D', '?')} "
                f"T={record.get('T', '?')}"
            )
        if terms:
            line = _terms_line("terms", terms)
            if hb.get("cost") is not None:
                line += f"  cost={hb['cost']}"
            parts.append(line)
        if best:
            parts.append(_terms_line("best ", best))
        parts.append(
            f"clock: elapsed={_fmt_seconds(hb.get('elapsed_s'))} "
            f"eta={_fmt_seconds(hb.get('eta_s'))} "
            f"beat_age={_fmt_seconds(state.heartbeat_age_s)} "
            f"checkpoint={hb.get('last_checkpoint') or '-'}"
        )
    else:
        parts.append(f"heartbeat: none ({state.heartbeat_path})")

    if state.events:
        parts.append(f"trace: {state.events} events, {state.stages} stages")
    else:
        parts.append("trace: no events yet")

    if state.alarms:
        parts.append("alarms:")
        parts.extend(
            f"  ! [{alarm.kind}] {alarm.message}" for alarm in state.alarms
        )
    else:
        parts.append("alarms: none")
    for problem in state.problems:
        parts.append(f"  ~ {problem}")
    return "\n".join(parts)


def render_watch_trace(
    state: WatchState, trace: RunTrace, max_rows: int = 8
) -> str:
    """The full dashboard frame: state panel + trace curves and table."""
    from ..analysis.report import format_table
    from .summary import sparkline, stage_costs

    parts = [render_watch(state, max_rows=max_rows)]
    stages = trace.stages
    if stages:
        costs = stage_costs(trace)
        acceptance = trace.series("acceptance")
        if costs:
            parts.append(
                f"  cost        {sparkline(costs)}  "
                f"[{min(costs):.4g}, {max(costs):.4g}]"
            )
        if acceptance:
            parts.append(
                f"  acceptance  {sparkline(acceptance)}  "
                f"[{min(acceptance):.4g}, {max(acceptance):.4g}]"
            )
        recent = stages[-max_rows:]
        has_terms = any("terms" in stage for stage in recent)
        headers = ["stage", "temperature", "accept"]
        if has_terms:
            headers += ["G", "D", "T"]
        else:
            headers += ["cost"]
        rows = []
        for stage in recent:
            row: list = [
                stage.get("index"), stage.get("temperature"),
                stage.get("acceptance"),
            ]
            if has_terms:
                terms = stage.get("terms", {})
                row += [terms.get("G"), terms.get("D"), terms.get("T")]
            else:
                row += [stage.get("cost")]
            rows.append(row)
        parts.append(format_table(
            headers, rows, title=f"last {len(recent)} stages", decimals=4,
        ))
    return "\n".join(parts)

"""Trace analysis: run summaries, run-to-run diffs, anomaly flags.

Everything here is a pure function from :class:`~repro.obs.events.RunTrace`
records to strings/records — no layout state, no re-running.  The CLI
(``repro-fpga trace``) is a thin argparse shell over these.

The summary renders the run the way the paper's Figure 6 reads: a
cooling curve, the routability-convergence series ``G``/``D``, the
critical-path estimate ``T``, and the adaptive-weight trajectories —
as aligned tables plus unicode sparklines for the at-a-glance shape.
"""

from __future__ import annotations

import math
from typing import Optional

from ..analysis.report import format_table
from .events import RunTrace, reconstructed_cost

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int = 60) -> str:
    """A unicode sparkline of one series (min-max scaled).

    Series longer than ``width`` are bucketed by mean so the line stays
    terminal-sized; constant series render flat at the lowest level.
    """
    if not values:
        return ""
    if len(values) > width:
        # Integer bucket boundaries cover every sample exactly once
        # (bucket sizes differ by at most one); the old float-stepped
        # split could drop trailing samples when len % width != 0.
        bucketed = []
        for i in range(width):
            start = i * len(values) // width
            end = (i + 1) * len(values) // width
            chunk = values[start:end]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int((value - lo) / span * top)] for value in values
    )


def _fmt(value: Optional[float], decimals: int = 4) -> str:
    if value is None:
        return "-"
    return f"{value:.{decimals}g}"


# ----------------------------------------------------------------------
# Anomaly detection
# ----------------------------------------------------------------------
# Each detector is a pure function RunTrace -> list[str] so both the
# post-hoc summary (find_anomalies) and the live engine
# (repro.obs.live.AnomalyEngine) compose the same logic — the live
# watcher re-runs them incrementally on a growing trace, where each
# message stabilizes once the stages that triggered it are on disk.

def detect_stalled_acceptance(trace: RunTrace) -> list[str]:
    """Acceptance pinned near zero for far longer than freeze patience:
    the run is burning temperatures doing nothing (mis-seeded T0 or a
    frozen window)."""
    stages = trace.stages
    if len(stages) < 4:
        return []
    patience = (
        trace.manifest.get("config", {})
        .get("schedule", {})
        .get("freeze_patience", 3)
    ) or 3
    streak = best_streak = 0
    for stage in stages:
        if stage["acceptance"] < 0.02:
            streak += 1
            best_streak = max(best_streak, streak)
        else:
            streak = 0
    if best_streak > 2 * patience:
        return [
            f"stalled acceptance: {best_streak} consecutive stages below "
            f"2% acceptance (freeze patience is {patience}); the schedule "
            f"is burning temperatures without making progress"
        ]
    return []


def detect_weight_oscillation(trace: RunTrace) -> list[str]:
    """An adaptive weight whose trajectory flips direction on most
    stages with large amplitude: the normalization is chasing its own
    tail instead of converging."""
    stages = trace.stages
    if len(stages) < 4:
        return []
    anomalies: list[str] = []
    for key, label in (("wg", "Wg"), ("wd", "Wd"), ("wt", "Wt")):
        series = trace.series("weights", key)
        if len(series) < 4:
            continue
        deltas = [b - a for a, b in zip(series, series[1:])]
        moves = [d for d in deltas if abs(d) > 1e-12]
        if len(moves) < 4:
            continue
        flips = sum(
            1 for a, b in zip(moves, moves[1:]) if (a > 0) != (b > 0)
        )
        mean = sum(abs(v) for v in series) / len(series)
        amplitude = (max(series) - min(series)) / mean if mean > 0 else 0.0
        if flips >= 0.6 * (len(moves) - 1) and amplitude > 0.5:
            anomalies.append(
                f"weight oscillation: {label} flips direction on "
                f"{flips}/{len(moves) - 1} stages with "
                f"{100 * amplitude:.0f}% relative amplitude; the adaptive "
                f"normalization is not converging"
            )
    return anomalies


def detect_repair_collapse(trace: RunTrace) -> list[str]:
    """The detailed repair success rate falling to near zero after
    being healthy: the layout dug itself into a congestion hole the
    router cannot climb out of (needs per-stage metrics deltas)."""
    stages = trace.stages
    if len(stages) < 4:
        return []
    rates: list[Optional[float]] = []
    for stage in stages:
        metrics = stage.get("metrics", {})
        ok = metrics.get("repair.detail_ok", 0)
        fail = metrics.get("repair.detail_fail", 0)
        rates.append(ok / (ok + fail) if ok + fail >= 20 else None)
    observed = [r for r in rates if r is not None]
    if observed and max(observed) > 0.5:
        peak_at = rates.index(max(observed))
        collapsed = [
            i for i, r in enumerate(rates) if i > peak_at and r is not None
            and r < 0.05
        ]
        if collapsed:
            return [
                f"repair-rate collapse: detailed repair success fell from "
                f"{100 * max(observed):.0f}% (stage {peak_at}) to under 5% "
                f"(stage {collapsed[0]}); the placement has routed itself "
                f"into congestion the router cannot repair"
            ]
    return []


def stage_costs(trace: RunTrace) -> list[float]:
    """One scalar cost per stage, whichever shape the flow recorded.

    Simultaneous stages carry (terms, weights) pairs that reconstruct
    the exact cost; sequential stages carry a scalar ``cost`` field.
    Stages with neither are skipped.
    """
    costs: list[float] = []
    for stage in trace.stages:
        value = reconstructed_cost(stage)
        if value is None:
            value = stage.get("cost")
        if value is not None:
            costs.append(value)
    return costs


def detect_cost_plateau(
    trace: RunTrace, min_stages: int = 8, rel_tol: float = 1e-4
) -> list[str]:
    """Cost flat for many stages while moves are still being accepted:
    the anneal is churning without improving (a schedule stuck above
    the freeze test, or a cost surface the moves cannot descend).

    Used by the live engine only — the post-hoc summary's anomaly list
    stays byte-identical to what pre-live releases printed.  Stages
    with near-zero acceptance are excluded: a frozen run is the
    stalled-acceptance detector's finding, not a plateau.
    """
    stages = trace.stages
    if len(stages) <= min_stages:
        return []
    costs = stage_costs(trace)
    if len(costs) != len(stages):
        return []
    streak = best_streak = 0
    for i in range(1, len(stages)):
        flat = abs(costs[i] - costs[i - 1]) <= rel_tol * max(
            abs(costs[i - 1]), 1e-12
        )
        live = stages[i]["acceptance"] >= 0.02
        if flat and live:
            streak += 1
            best_streak = max(best_streak, streak)
        else:
            streak = 0
    if best_streak >= min_stages:
        return [
            f"cost plateau: {best_streak} consecutive stages with under "
            f"{rel_tol:.0e} relative cost change at live acceptance; the "
            f"anneal is wandering without making progress"
        ]
    return []


#: The post-hoc detector set, in report order.  ``find_anomalies``
#: composes exactly these, so the summary output is byte-identical to
#: the pre-refactor inline version (pinned by tests/test_obs.py).
SUMMARY_DETECTORS = (
    detect_stalled_acceptance,
    detect_weight_oscillation,
    detect_repair_collapse,
)


def find_anomalies(trace: RunTrace) -> list[str]:
    """Heuristic red flags in one run's dynamics (empty list = none).

    Composes :data:`SUMMARY_DETECTORS` — stalled acceptance, weight
    oscillation, repair-rate collapse — each tied to a failure mode the
    annealer has actually exhibited during tuning.  The live engine
    (:mod:`repro.obs.live`) runs the same detectors incrementally and
    adds cost-plateau and heartbeat-loss on top.
    """
    anomalies: list[str] = []
    for detector in SUMMARY_DETECTORS:
        anomalies.extend(detector(trace))
    return anomalies


# ----------------------------------------------------------------------
# Summary
# ----------------------------------------------------------------------
def summarize(trace: RunTrace, max_rows: int = 12) -> str:
    """Human-readable multi-section summary of one trace."""
    parts: list[str] = []
    manifest = trace.manifest
    if manifest:
        netlist = manifest.get("netlist", {})
        parts.append(
            f"run: flow={manifest.get('flow', '?')} "
            f"seed={manifest.get('seed', '?')} "
            f"design={netlist.get('name', '?')} "
            f"({netlist.get('cells', '?')} cells / "
            f"{netlist.get('nets', '?')} nets)  "
            f"config={manifest.get('config_digest', '?')} "
            f"v{manifest.get('package_version', '?')} "
            f"schema={trace.schema_version}"
        )

    stages = trace.stages
    if stages:
        parts.append(f"stages: {len(stages)}")
        for label, series in (
            ("temperature", trace.series("temperature")),
            ("acceptance", trace.series("acceptance")),
            ("G (global unrouted)", trace.series("terms", "G")),
            ("D (detail unrouted)", trace.series("terms", "D")),
            ("T (worst delay)", trace.series("terms", "T")),
            ("Wg", trace.series("weights", "wg")),
            ("Wd", trace.series("weights", "wd")),
            ("Wt", trace.series("weights", "wt")),
            ("cost", trace.series("cost")),
        ):
            if series:
                parts.append(
                    f"  {label:>20}  {sparkline(series)}  "
                    f"[{_fmt(min(series))}, {_fmt(max(series))}]"
                )

        # Stage table, thinned to at most max_rows evenly-spaced rows.
        step = max(1, math.ceil(len(stages) / max_rows))
        picked = list(stages[::step])
        if picked[-1] is not stages[-1]:
            picked.append(stages[-1])
        has_terms = any("terms" in stage for stage in picked)
        headers = ["stage", "temperature", "accept"]
        if has_terms:
            headers += ["G", "D", "T", "Wg", "Wd", "Wt"]
        else:
            headers += ["cost"]
        rows = []
        for stage in picked:
            row: list = [stage["index"], stage["temperature"],
                         stage["acceptance"]]
            if has_terms:
                terms = stage.get("terms", {})
                weights = stage.get("weights", {})
                row += [terms.get("G"), terms.get("D"), terms.get("T"),
                        weights.get("wg"), weights.get("wd"),
                        weights.get("wt")]
            else:
                row += [stage.get("cost")]
            rows.append(row)
        parts.append(format_table(headers, rows, title="per-stage dynamics",
                                  decimals=4))

    end = trace.run_end
    if end is not None:
        parts.append(
            f"final: moves {end.get('moves_accepted')}/"
            f"{end.get('moves_attempted')} accepted over "
            f"{end.get('temperatures')} temperatures"
        )
        final_cost = end.get("final_cost")
        rebuilt = reconstructed_cost(end)
        if final_cost is not None and rebuilt is not None:
            ok = "ok" if final_cost == rebuilt else "MISMATCH"
            parts.append(
                f"cost reconstruction: recorded {final_cost!r} vs "
                f"Wg*G+Wd*D+Wt*T {rebuilt!r} [{ok}]"
            )
    else:
        parts.append("final: (no run_end event — run aborted?)")

    violations = trace.of_type("sanitizer_violation")
    for violation in violations:
        parts.append(
            f"SANITIZER VIOLATION at {violation.get('phase')}: "
            f"{'; '.join(violation.get('problems', []))}"
        )

    anomalies = find_anomalies(trace)
    if anomalies:
        parts.append("anomalies:")
        parts.extend(f"  ! {anomaly}" for anomaly in anomalies)
    else:
        parts.append("anomalies: none")
    return "\n".join(parts)


# ----------------------------------------------------------------------
# Diff
# ----------------------------------------------------------------------
def _stage_key_values(stage: dict) -> dict[str, Optional[float]]:
    terms = stage.get("terms", {})
    return {
        "acceptance": stage.get("acceptance"),
        "G": terms.get("G"),
        "D": terms.get("D"),
        "T": terms.get("T"),
        "cost": stage.get("cost"),
    }


def diff_traces(a: RunTrace, b: RunTrace, rel_tol: float = 1e-9) -> str:
    """Stage-by-stage comparison of two traces.

    Reports manifest-level differences (seed/config/design), the first
    stage where the runs' dynamics diverge, and a side-by-side table of
    ``G``/``D``/``T``/acceptance around and after the divergence.
    """
    parts: list[str] = []
    ma, mb = a.manifest, b.manifest
    for field in ("flow", "seed", "config_digest", "package_version"):
        va, vb = ma.get(field), mb.get(field)
        if va != vb:
            parts.append(f"manifest: {field} differs: {va!r} vs {vb!r}")
    na = ma.get("netlist", {}).get("name")
    nb = mb.get("netlist", {}).get("name")
    if na != nb:
        parts.append(f"manifest: design differs: {na!r} vs {nb!r}")
    if not parts:
        parts.append("manifest: identical")

    sa, sb = a.stages, b.stages
    shared = min(len(sa), len(sb))
    if len(sa) != len(sb):
        parts.append(f"stage count differs: {len(sa)} vs {len(sb)}")

    first_divergence: Optional[int] = None
    for index in range(shared):
        va, vb = _stage_key_values(sa[index]), _stage_key_values(sb[index])
        for key in va:
            x, y = va[key], vb[key]
            if x is None or y is None:
                continue
            if not math.isclose(x, y, rel_tol=rel_tol, abs_tol=rel_tol):
                first_divergence = index
                break
        if first_divergence is not None:
            break

    if shared and first_divergence is None:
        parts.append(f"dynamics: identical across all {shared} shared stages")
    elif first_divergence is not None:
        parts.append(f"dynamics: first divergence at stage {first_divergence}")
        rows = []
        lo = max(0, first_divergence - 1)
        indices = list(range(lo, min(shared, lo + 6)))
        if shared - 1 not in indices and shared > 0:
            indices.append(shared - 1)
        for index in indices:
            va, vb = _stage_key_values(sa[index]), _stage_key_values(sb[index])
            marker = "<-" if index == first_divergence else ""
            rows.append([
                index,
                va["acceptance"], vb["acceptance"],
                va["G"], vb["G"], va["D"], vb["D"],
                va["T"], vb["T"], marker,
            ])
        parts.append(format_table(
            ["stage", "accept A", "accept B", "G A", "G B", "D A", "D B",
             "T A", "T B", ""],
            rows,
            title="diverging stages (A vs B)",
            decimals=4,
        ))

    ea, eb = a.run_end, b.run_end
    if ea is not None and eb is not None:
        ta, tb = ea.get("terms", {}), eb.get("terms", {})
        rows = [
            [name, ta.get(key), tb.get(key)]
            for name, key in (("G", "G"), ("D", "D"), ("T (ns)", "T"))
        ]
        rows.append(["final cost", ea.get("final_cost"), eb.get("final_cost")])
        parts.append(format_table(["metric", "run A", "run B"], rows,
                                  title="final metrics", decimals=4))
    return "\n".join(parts)

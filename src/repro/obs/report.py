"""The HTML observatory: one self-contained page over a run ledger.

``repro-fpga runs report`` renders a ledger (plus any traces its
records point at) into a single static HTML file: overview stat tiles,
a QoR table over every run, per-design convergence overlays (cost vs
cumulative move attempts, rebuilt from the recorded traces),
acceptance-trajectory sparklines, per-seed variance tables, and links
to the runs' artifacts (traces, snapshots, xray floorplan SVGs).

Determinism contract
--------------------
The page is **byte-identical given the same ledger inputs**: rendering
reads no wall clock and no RNG, floats are formatted through one fixed
helper, iteration follows record order or explicit sorts, and colors
are assigned from a fixed palette in slot order (never cycled; runs
past the palette fold to a neutral).  ``tests/test_ledger.py`` pins
the output against a committed golden file.

Everything is inline — CSS, SVG charts, data — so the file can be
attached to a CI run or mailed around with no external references
except the (relative) artifact links.
"""

from __future__ import annotations

import html
from typing import Optional, Sequence

from .events import RunTrace, reconstructed_cost
from .ledger import group_records, slice_stats

#: Categorical series colors (light mode), assigned in fixed slot
#: order, never cycled.  This is the validated default palette from
#: the dataviz reference instance: adjacent-pair CVD ΔE ≥ 8 and
#: normal-vision ΔE ≥ 15 in both modes.  Runs beyond the eighth slot
#: fold to the neutral :data:`OVERFLOW_COLOR`.
PALETTE_LIGHT = (
    "#2a78d6", "#eb6834", "#1baf7a", "#eda100",
    "#e87ba4", "#008300", "#4a3aa7", "#e34948",
)
#: The same eight hues stepped for the dark surface.
PALETTE_DARK = (
    "#3987e5", "#d95926", "#199e70", "#c98500",
    "#d55181", "#008300", "#9085e9", "#e66767",
)
#: Neutral for series past the last palette slot.
OVERFLOW_COLOR = "#8a8984"


def _fmt(value, decimals: int = 4) -> str:
    """One deterministic number formatter for the whole page."""
    if value is None:
        return "–"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    return f"{value:.{decimals}g}"


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def series_color(slot: int) -> str:
    """CSS variable reference for one series slot (folds past the end)."""
    if slot < len(PALETTE_LIGHT):
        return f"var(--series-{slot + 1})"
    return "var(--series-overflow)"


# ----------------------------------------------------------------------
# Series extraction from traces
# ----------------------------------------------------------------------
def convergence_series(
    trace: RunTrace,
) -> tuple[list[float], list[float]]:
    """``(cumulative move attempts, scalar cost)`` per recorded stage.

    Simultaneous-flow stages reconstruct ``Wg*G + Wd*D + Wt*T`` from
    the recorded terms/weights (bit-exact, see
    :func:`repro.obs.events.reconstructed_cost`); sequential stages
    carry a scalar ``cost`` directly.  Stages with neither are skipped.
    """
    xs: list[float] = []
    ys: list[float] = []
    attempts = 0.0
    for stage in trace.stages:
        attempts += stage.get("attempts", 0)
        cost = stage.get("cost")
        if cost is None:
            cost = reconstructed_cost(stage)
        if cost is None:
            continue
        xs.append(attempts)
        ys.append(cost)
    return xs, ys


def acceptance_series(trace: RunTrace) -> list[float]:
    """Per-stage acceptance fractions, in stage order."""
    return [float(v) for v in trace.series("acceptance")]


# ----------------------------------------------------------------------
# SVG primitives
# ----------------------------------------------------------------------
def _points(
    xs: Sequence[float], ys: Sequence[float],
    x0: float, x1: float, y0: float, y1: float,
    left: float, right: float, top: float, bottom: float,
) -> str:
    """Polyline points mapping data space onto the plot rectangle."""
    xspan = (x1 - x0) or 1.0
    yspan = (y1 - y0) or 1.0
    out = []
    for x, y in zip(xs, ys):
        px = left + (x - x0) / xspan * (right - left)
        py = bottom - (y - y0) / yspan * (bottom - top)
        out.append(f"{px:.1f},{py:.1f}")
    return " ".join(out)


def svg_sparkline(
    values: Sequence[float], width: int = 140, height: int = 30,
    color: str = "var(--series-1)", label: str = "",
) -> str:
    """A minimal inline-SVG sparkline (no axes, native title tooltip)."""
    values = list(values)
    if not values:
        return '<span class="muted">–</span>'
    lo, hi = min(values), max(values)
    points = _points(
        list(range(len(values))), values,
        0, max(len(values) - 1, 1), lo, hi,
        2, width - 2, 3, height - 3,
    )
    title = _esc(
        f"{label + ': ' if label else ''}{len(values)} stages, "
        f"min {_fmt(lo)}, max {_fmt(hi)}"
    )
    return (
        f'<svg class="spark" role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}"><title>{title}</title>'
        f'<polyline fill="none" stroke="{color}" stroke-width="2" '
        f'stroke-linejoin="round" stroke-linecap="round" '
        f'points="{points}"/></svg>'
    )


def svg_overlay(
    series: Sequence[tuple[str, int, Sequence[float], Sequence[float]]],
    width: int = 520, height: int = 200,
    x_label: str = "move attempts", y_label: str = "cost",
) -> str:
    """Convergence overlay: one polyline per run on shared axes.

    ``series`` is ``(label, color slot, xs, ys)`` per run.  One y axis
    (never dual), recessive grid, min/max tick labels, and a native
    ``<title>`` tooltip per line; the legend is rendered by the caller
    in HTML so it can wrap.
    """
    drawable = [s for s in series if s[2] and s[3]]
    if not drawable:
        return '<p class="muted">no convergence data (no traces on file)</p>'
    x0 = min(min(s[2]) for s in drawable)
    x1 = max(max(s[2]) for s in drawable)
    y0 = min(min(s[3]) for s in drawable)
    y1 = max(max(s[3]) for s in drawable)
    left, right, top, bottom = 46.0, width - 10.0, 8.0, height - 22.0
    grid_ys = [top, (top + bottom) / 2, bottom]
    parts = [
        f'<svg class="overlay" role="img" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">',
        f"<title>{_esc(y_label)} vs {_esc(x_label)}, "
        f"{len(drawable)} runs</title>",
    ]
    for gy in grid_ys:
        parts.append(
            f'<line class="grid" x1="{left:.1f}" y1="{gy:.1f}" '
            f'x2="{right:.1f}" y2="{gy:.1f}"/>'
        )
    parts.append(
        f'<line class="axis" x1="{left:.1f}" y1="{bottom:.1f}" '
        f'x2="{right:.1f}" y2="{bottom:.1f}"/>'
    )
    for label, slot, xs, ys in drawable:
        points = _points(xs, ys, x0, x1, y0, y1, left, right, top, bottom)
        parts.append(
            f'<polyline fill="none" stroke="{series_color(slot)}" '
            f'stroke-width="2" stroke-linejoin="round" '
            f'stroke-linecap="round" points="{points}">'
            f"<title>{_esc(label)}: cost {_fmt(ys[-1])} after "
            f"{_fmt(xs[-1], 6)} attempts</title></polyline>"
        )
    parts.append(
        f'<text class="tick" x="{left - 4:.1f}" y="{top + 4:.1f}" '
        f'text-anchor="end">{_fmt(y1)}</text>'
        f'<text class="tick" x="{left - 4:.1f}" y="{bottom:.1f}" '
        f'text-anchor="end">{_fmt(y0)}</text>'
        f'<text class="tick" x="{left:.1f}" y="{height - 8:.1f}">'
        f"{_fmt(x0, 6)}</text>"
        f'<text class="tick" x="{right:.1f}" y="{height - 8:.1f}" '
        f'text-anchor="end">{_fmt(x1, 6)} {_esc(x_label)}</text>'
    )
    parts.append("</svg>")
    return "".join(parts)


# ----------------------------------------------------------------------
# Page sections
# ----------------------------------------------------------------------
_CSS = """
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --surface-2: #f0efec;
  --text-primary: #0b0b0b; --text-secondary: #52514e;
  --border: #d9d8d3; --grid: #e6e5e1;
  --series-1: #2a78d6; --series-2: #eb6834; --series-3: #1baf7a;
  --series-4: #eda100; --series-5: #e87ba4; --series-6: #008300;
  --series-7: #4a3aa7; --series-8: #e34948;
  --series-overflow: #8a8984;
  --ok: #008300; --bad: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --surface-1: #1a1a19; --surface-2: #262625;
    --text-primary: #ffffff; --text-secondary: #c3c2b7;
    --border: #3b3b38; --grid: #33332f;
    --series-1: #3987e5; --series-2: #d95926; --series-3: #199e70;
    --series-4: #c98500; --series-5: #d55181; --series-6: #008300;
    --series-7: #9085e9; --series-8: #e66767;
    --ok: #1baf7a; --bad: #e66767;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1080px;
  background: var(--surface-1); color: var(--text-primary);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 28px 0 8px; }
h3 { font-size: 14px; margin: 18px 0 6px; }
.muted { color: var(--text-secondary); }
.tiles { display: flex; flex-wrap: wrap; gap: 10px; margin: 16px 0; }
.tile {
  background: var(--surface-2); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 16px; min-width: 110px;
}
.tile .v { font-size: 22px; font-weight: 600; }
.tile .k { color: var(--text-secondary); font-size: 12px; }
table { border-collapse: collapse; width: 100%; margin: 8px 0; }
th, td {
  text-align: left; padding: 4px 10px;
  border-bottom: 1px solid var(--border); white-space: nowrap;
}
th { color: var(--text-secondary); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
tr:hover td { background: var(--surface-2); }
.ok { color: var(--ok); } .bad { color: var(--bad); }
.swatch {
  display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 6px; vertical-align: baseline;
}
.legend { display: flex; flex-wrap: wrap; gap: 4px 16px; margin: 4px 0; }
.legend span { color: var(--text-secondary); font-size: 12px; }
svg.overlay text.tick { font: 10px system-ui; fill: var(--text-secondary); }
svg.overlay line.grid { stroke: var(--grid); stroke-width: 1; }
svg.overlay line.axis { stroke: var(--border); stroke-width: 1; }
svg.spark { vertical-align: middle; }
a { color: var(--series-1); }
code {
  background: var(--surface-2); padding: 1px 4px; border-radius: 3px;
  font-size: 12px;
}
footer {
  margin-top: 32px; color: var(--text-secondary); font-size: 12px;
}
"""


def _tile(value: str, key: str) -> str:
    return (
        f'<div class="tile"><div class="v">{_esc(value)}</div>'
        f'<div class="k">{_esc(key)}</div></div>'
    )


def _run_label(record: dict, index: int) -> str:
    seed = record.get("seed")
    core = record.get("core")
    bits = [f"run {index}", str(record.get("flow", "?"))]
    if seed is not None:
        bits.append(f"seed {seed}")
    if core:
        bits.append(core)
    if record.get("tag"):
        bits.append(record["tag"])
    return " · ".join(bits)


def _artifact_links(record: dict) -> str:
    artifacts = record.get("artifacts") or {}
    links = []
    for kind in sorted(artifacts):
        path = artifacts[kind]
        links.append(f'<a href="{_esc(path)}">{_esc(kind)}</a>')
    return " ".join(links) if links else '<span class="muted">–</span>'


def _qor_table(
    records: list[dict], traces: dict[int, RunTrace]
) -> str:
    headers = (
        "#", "flow", "design", "seed", "core", "config", "G", "D",
        "T (ns)", "routed", "moves", "moves/s", "score", "tag",
        "acceptance", "artifacts",
    )
    numeric = {"#", "seed", "G", "D", "T (ns)", "moves", "moves/s", "score"}
    rows = []
    for index, record in enumerate(records):
        terms = record.get("terms") or {}
        trace = traces.get(index)
        accepted = record.get("moves_accepted")
        attempted = record.get("moves_attempted")
        moves = (
            f"{_fmt(accepted)}/{_fmt(attempted)}"
            if attempted is not None else "–"
        )
        routed = record.get("fully_routed")
        routed_cell = (
            '<span class="ok">yes</span>' if routed
            else '<span class="bad">NO</span>'
        )
        spark = (
            svg_sparkline(
                acceptance_series(trace), color=series_color(index),
                label=_run_label(record, index) + " acceptance",
            )
            if trace is not None else '<span class="muted">–</span>'
        )
        cells = [
            str(index), _esc(record.get("flow", "?")),
            _esc(record.get("design", "?")), _fmt(record.get("seed")),
            _esc(record.get("core") or "–"),
            f"<code>{_esc(record.get('config_digest', '–'))}</code>",
            _fmt(terms.get("G")), _fmt(terms.get("D")),
            _fmt(record.get("worst_delay_ns")), routed_cell, moves,
            _fmt(record.get("moves_per_sec")),
            _fmt(record.get("normalized_score")),
            _esc(record.get("tag") or "–"), spark, _artifact_links(record),
        ]
        row = "".join(
            f'<td class="num">{cell}</td>'
            if header in numeric else f"<td>{cell}</td>"
            for header, cell in zip(headers, cells)
        )
        rows.append(f"<tr>{row}</tr>")
    head = "".join(
        f'<th class="num">{_esc(h)}</th>' if h in numeric
        else f"<th>{_esc(h)}</th>"
        for h in headers
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _convergence_section(
    records: list[dict], traces: dict[int, RunTrace]
) -> str:
    groups: dict[tuple, list[int]] = {}
    for index in sorted(traces):
        record = records[index]
        groups.setdefault(
            (str(record.get("flow")), str(record.get("design"))), []
        ).append(index)
    if not groups:
        return (
            '<p class="muted">No trace artifacts were found next to the '
            "ledger, so convergence curves cannot be rebuilt.  Record runs "
            "with <code>--trace</code> to populate this section.</p>"
        )
    parts = []
    for (flow, design), indices in sorted(groups.items()):
        series = []
        legend = []
        for index in indices:
            xs, ys = convergence_series(traces[index])
            label = _run_label(records[index], index)
            series.append((label, index, xs, ys))
            legend.append(
                f'<span><i class="swatch" '
                f'style="background:{series_color(index)}"></i>'
                f"{_esc(label)}</span>"
            )
        parts.append(f"<h3>{_esc(flow)} · {_esc(design)}</h3>")
        parts.append(svg_overlay(series))
        if len(series) > 1:
            parts.append(f'<div class="legend">{"".join(legend)}</div>')
    return "".join(parts)


def _variance_section(records: list[dict]) -> str:
    buckets: dict[tuple, list[dict]] = {}
    for record in records:
        key = (
            str(record.get("flow")), str(record.get("design")),
            str(record.get("family_digest") or record.get("config_digest")
                or "(none)"),
        )
        buckets.setdefault(key, []).append(record)
    rows = []
    for (flow, design, family), group in sorted(buckets.items()):
        stats = slice_stats(group)
        seeds = ", ".join(str(s) for s in stats["seeds"]) or "–"
        routed = stats["routed_fraction"]
        routed_cell = (
            f'<span class="{"ok" if routed >= 1.0 else "bad"}">'
            f"{routed:.0%}</span>"
        )
        rows.append(
            "<tr>"
            f"<td>{_esc(flow)}</td><td>{_esc(design)}</td>"
            f"<td><code>{_esc(family)}</code></td>"
            f'<td class="num">{stats["runs"]}</td><td>{_esc(seeds)}</td>'
            f'<td class="num">{_fmt(stats["delay_mean"])}</td>'
            f'<td class="num">{_fmt(stats["delay_stdev"])}</td>'
            f'<td class="num">{_fmt(stats["delay_min"])}</td>'
            f'<td class="num">{_fmt(stats["delay_max"])}</td>'
            f"<td>{routed_cell}</td></tr>"
        )
    return (
        "<table><thead><tr><th>flow</th><th>design</th><th>config family"
        '</th><th class="num">runs</th><th>seeds</th>'
        '<th class="num">T mean</th><th class="num">T stdev</th>'
        '<th class="num">T min</th><th class="num">T max</th>'
        "<th>routed</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def render_report(
    records: list[dict],
    traces: Optional[dict[int, RunTrace]] = None,
    title: str = "Run ledger observatory",
) -> str:
    """The whole observatory page as one self-contained HTML string.

    ``traces`` maps record index -> loaded :class:`RunTrace` for the
    records whose trace artifacts were found; missing entries degrade
    to "no convergence data".  Pure function of its inputs — see the
    module docstring's determinism contract.
    """
    traces = traces or {}
    designs = sorted({str(r.get("design")) for r in records})
    families = sorted({
        str(r.get("family_digest") or r.get("config_digest"))
        for r in records
    })
    routed = [bool(r.get("fully_routed")) for r in records]
    routed_pct = f"{sum(routed) / len(routed):.0%}" if routed else "–"
    delays = [
        r["worst_delay_ns"] for r in records
        if r.get("worst_delay_ns") is not None
    ]
    best_delay = _fmt(min(delays)) if delays else "–"
    tiles = "".join((
        _tile(str(len(records)), "runs"),
        _tile(str(len(designs)), "designs"),
        _tile(str(len(families)), "config families"),
        _tile(routed_pct, "fully routed"),
        _tile(best_delay, "best T (ns)"),
        _tile(str(len(traces)), "traces on file"),
    ))
    body = f"""
<h1>{_esc(title)}</h1>
<p class="muted">Cross-run convergence analytics over an append-only run
ledger (<code>repro.obs.ledger</code> schema v{records[0].get(
    "schema_version", "?") if records else "?"}).
Generated by <code>repro-fpga runs report</code>; byte-identical for the
same ledger inputs.</p>
<div class="tiles">{tiles}</div>
<h2>Quality of results</h2>
{_qor_table(records, traces)}
<h2>Convergence</h2>
<p class="muted">Scalar anneal cost against cumulative move attempts, rebuilt
from each run's recorded trace (bit-exact reconstruction,
<code>Wg·G + Wd·D + Wt·T</code>).</p>
{_convergence_section(records, traces)}
<h2>Per-seed variance</h2>
<p class="muted">Runs grouped by seed-independent config family
(<code>family_digest</code>): the spread a multi-start portfolio would
draw from.</p>
{_variance_section(records)}
<footer>repro.obs.report · ledger schema v{records[0].get(
    "schema_version", "?") if records else "?"} · colors: validated default
categorical palette, fixed slot order</footer>
"""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n"
        f"</head><body>{body}</body></html>\n"
    )

"""Renderers for layout snapshots: terminal heatmaps, tables, SVG.

Every function renders a :mod:`repro.obs.snapshot` payload (a plain
dict, usually loaded from JSON) into a **string** — library code never
prints (see "Library output policy" in docs/OBSERVABILITY.md); the
``repro-fpga xray`` CLI does the writing.
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape

from ..analysis.report import format_table
from .metrics import HISTOGRAM_BOUNDS, Histogram
from .snapshot import _critical_nets

_SHADES = " ▁▂▃▄▅▆▇█"


def _fmt_quantile(value) -> str:
    """A bucketed quantile for display; None means the overflow bucket
    (see ``Histogram.summary()``), shown as beyond the top bound."""
    if value is None:
        return f">{HISTOGRAM_BOUNDS[-1]}"
    return f"{value:.0f}"


def _shade(value: float, capacity: float) -> str:
    """One heatmap glyph: blank when free, block height by fill fraction."""
    if value <= 0 or capacity <= 0:
        return _SHADES[0]
    frac = min(1.0, value / capacity)
    return _SHADES[max(1, min(len(_SHADES) - 1, math.ceil(frac * 8)))]


def _pooled(occupancy: list, width: int) -> list:
    """Max-pool an occupancy profile down to at most ``width`` bins."""
    if len(occupancy) <= width:
        return list(occupancy)
    pooled = []
    for i in range(width):
        lo = i * len(occupancy) // width
        hi = max(lo + 1, (i + 1) * len(occupancy) // width)
        pooled.append(max(occupancy[lo:hi]))
    return pooled


def render_heatmap(snapshot: dict, width: int = 72) -> str:
    """Per-channel density heatmap, top channel first.

    One row per channel: a column-by-column fill glyph (max-pooled to
    ``width`` characters), plus peak density vs. track capacity,
    segments used, and utilization.
    """
    lines = ["channel density (top channel first; capacity = tracks)"]
    for entry in sorted(
        snapshot.get("channels", []),
        key=lambda e: e.get("index", 0),
        reverse=True,
    ):
        profile = _pooled(entry.get("occupancy", []), width)
        bar = "".join(_shade(v, entry.get("tracks", 0)) for v in profile)
        lines.append(
            f"ch{entry.get('index', '?'):>3} |{bar}| "
            f"max {entry.get('max_density', 0)}/{entry.get('tracks', 0)}  "
            f"segs {entry.get('segments_used', 0)}  "
            f"util {entry.get('utilization', 0.0):.2f}"
        )
    rows = snapshot.get("rows", [])
    if rows:
        feed = [entry.get("feedthroughs", 0) for entry in rows]
        peak = max(feed) if feed else 0
        bar = "".join(_shade(v, peak or 1) for v in feed)
        lines.append(
            f"feedthroughs per row (row 0 first): |{bar}| "
            f"peak {peak}, total {sum(feed)}"
        )
    return "\n".join(lines)


def render_critical_path(snapshot: dict, max_segments: int = 8) -> str:
    """The critical-path attribution as tables.

    An entry table (launch / interconnect / cell with running
    cumulative delay, which reaches ``T`` on the last row), then the
    ``max_segments`` largest per-segment Elmore contributors across the
    path's routed interconnect entries.
    """
    timing = snapshot.get("timing", {})
    entries = timing.get("entries", [])
    header = (
        f"critical path: T = {timing.get('T', 0.0):.4f} "
        f"-> endpoint {timing.get('endpoint')!r} "
        f"({len(timing.get('path', []))} cells)"
    )
    if not entries:
        return header + "\nno attribution entries (empty or trivial path)"

    rows = []
    cumulative = 0.0
    for entry in entries:
        cumulative += entry.get("delay", 0.0)
        kind = entry.get("kind", "?")
        if kind == "interconnect":
            element = (
                f"{entry.get('net')} "
                f"({entry.get('from')} -> {entry.get('to')})"
            )
            if not entry.get("routed", False):
                element += " [unrouted: estimate]"
        else:
            element = entry.get("cell", "?")
        rows.append((kind, element, entry.get("delay", 0.0), cumulative))
    table = format_table(
        ("kind", "element", "delay", "cumulative"), rows, decimals=4
    )

    segments = []
    for entry in entries:
        if entry.get("kind") != "interconnect" or not entry.get("routed"):
            continue
        for segment in entry.get("segments", []):
            segments.append((
                entry.get("net"),
                segment.get("label", ""),
                segment.get("resistance", 0.0),
                segment.get("downstream_cap", 0.0),
                segment.get("delay", 0.0),
            ))
    parts = [header, table]
    if segments:
        segments.sort(key=lambda row: row[4], reverse=True)
        parts.append(format_table(
            ("net", "segment", "R", "C_down", "delay"),
            segments[:max_segments],
            title=f"top {min(max_segments, len(segments))} "
            "segment contributors",
            decimals=4,
        ))
    return "\n".join(parts)


def render_summary(snapshot: dict) -> str:
    """One-paragraph digest: design, routing totals, density quantiles."""
    design = snapshot.get("design", {})
    totals = snapshot.get("totals", {})
    timing = snapshot.get("timing", {})
    densities = Histogram()
    for entry in snapshot.get("channels", []):
        for value in entry.get("occupancy", []):
            densities.observe(value)
    stats = densities.summary()
    label = snapshot.get("label") or "(unlabeled)"
    lines = [
        f"snapshot: {label}  design={design.get('name')} "
        f"({design.get('cells', '?')} cells / {design.get('nets', '?')} nets)"
        f"  schema={snapshot.get('schema_version')}",
        f"routing: fully_routed={totals.get('fully_routed')}  "
        f"G={totals.get('global_unrouted')}  "
        f"D={totals.get('detail_unrouted')}  "
        f"antifuses={totals.get('antifuses')}",
        f"timing: T={timing.get('T', 0.0):.4f}  "
        f"endpoint={timing.get('endpoint')!r}",
        f"density: p50={_fmt_quantile(stats['p50'])}  "
        f"p90={_fmt_quantile(stats['p90'])}  "
        f"p99={_fmt_quantile(stats['p99'])}  mean={stats['mean']:.2f} "
        f"(over {stats['count']} channel columns)",
    ]
    return "\n".join(lines)


def render_snapshot(snapshot: dict, width: int = 72) -> str:
    """Full terminal report: summary, heatmap, critical-path tables."""
    return "\n\n".join([
        render_summary(snapshot),
        render_heatmap(snapshot, width=width),
        render_critical_path(snapshot),
    ])


def render_diff(diff: dict) -> str:
    """Render a :func:`repro.obs.snapshot.diff_snapshots` report."""
    labels = diff.get("labels", ["A", "B"])
    lines = [f"A: {labels[0] or '(unlabeled)'}  B: {labels[1] or '(unlabeled)'}"]
    if not diff.get("fabric_match", True):
        lines.append("WARNING: fabrics differ; spatial alignment is nominal")

    timing = diff.get("timing", {})
    t_pair = timing.get("T", [None, None])
    lines.append(
        f"T: {t_pair[0]!r} -> {t_pair[1]!r}  "
        f"endpoint: {timing.get('endpoint', [None, None])[0]!r} -> "
        f"{timing.get('endpoint', [None, None])[1]!r}"
    )
    path = timing.get("path", {})
    lines.append(
        f"critical-path nets: {len(path.get('common', []))} shared, "
        f"{len(path.get('removed', []))} only in A "
        f"{path.get('removed', [])}, "
        f"{len(path.get('added', []))} only in B {path.get('added', [])}"
    )

    congestion = diff.get("congestion", {})
    changed = congestion.get("changed", [])
    h_pair = congestion.get("horizontal_segments_used", [None, None])
    v_pair = congestion.get("vertical_segments_used", [None, None])
    lines.append(
        f"congestion: {len(changed)} channels changed; horizontal segments "
        f"{h_pair[0]} -> {h_pair[1]}, vertical {v_pair[0]} -> {v_pair[1]}"
    )
    if changed:
        lines.append(format_table(
            ("channel", "segs A", "segs B", "max A", "max B"),
            [
                (
                    entry.get("channel"),
                    entry.get("segments_used", [None, None])[0],
                    entry.get("segments_used", [None, None])[1],
                    entry.get("max_density", [None, None])[0],
                    entry.get("max_density", [None, None])[1],
                )
                for entry in changed
            ],
        ))

    rows = diff.get("rows", {}).get("changed", [])
    if rows:
        lines.append(f"feedthroughs changed on {len(rows)} rows")

    cells = diff.get("cells", {})
    moved = cells.get("moved", [])
    lines.append(
        f"cells: {len(moved)} moved of {cells.get('aligned', 0)} aligned"
    )
    for entry in moved[:10]:
        lines.append(
            f"  {entry['name']}: ({entry['a'][0]},{entry['a'][1]}) -> "
            f"({entry['b'][0]},{entry['b'][1]})"
        )
    if len(moved) > 10:
        lines.append(f"  ... and {len(moved) - 10} more")

    nets = diff.get("nets", {})
    lines.append(
        f"nets: {len(nets.get('rerouted', []))} rerouted, "
        f"{len(nets.get('routing_state_changed', []))} changed "
        f"routed-state, of {nets.get('aligned', 0)} aligned"
    )
    return "\n".join(lines)


def render_svg(snapshot: dict) -> str:
    """An SVG floorplan: rows of cells, channel fill, critical path.

    Channels are horizontal bands shaded per column by density; placed
    cells are rectangles in the row bands (critical-path cells
    highlighted); the critical path's committed claims are drawn as
    thick overlay lines (horizontal runs in their channels, the trunk
    vertically).
    """
    fabric = snapshot.get("fabric", {})
    rows = int(fabric.get("rows", 0))
    cols = int(fabric.get("cols", 1))
    num_channels = int(fabric.get("num_channels", rows + 1))

    cell_w, cell_h, chan_h, margin = 14, 12, 10, 24
    width = 2 * margin + cols * cell_w
    height = 2 * margin + num_channels * chan_h + rows * cell_h

    def x_of(col: int) -> float:
        return margin + col * cell_w

    def y_channel(channel: int) -> float:
        return margin + (num_channels - 1 - channel) * (chan_h + cell_h)

    def y_row(row: int) -> float:
        return y_channel(row + 1) + chan_h

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    design = snapshot.get("design", {})
    timing = snapshot.get("timing", {})
    title = (
        f"{design.get('name', '?')} — {snapshot.get('label') or 'snapshot'} "
        f"— T={timing.get('T', 0.0):.4f}"
    )
    parts.append(
        f'<text x="{margin}" y="{margin - 8}" font-family="monospace" '
        f'font-size="11">{escape(title)}</text>'
    )

    for entry in snapshot.get("channels", []):
        channel = entry.get("index", 0)
        y = y_channel(channel)
        tracks = entry.get("tracks", 1) or 1
        parts.append(
            f'<rect x="{margin}" y="{y}" width="{cols * cell_w}" '
            f'height="{chan_h}" fill="#f2f2f2" stroke="#cccccc" '
            f'stroke-width="0.5"/>'
        )
        for col, value in enumerate(entry.get("occupancy", [])):
            if value <= 0:
                continue
            opacity = min(1.0, value / tracks)
            parts.append(
                f'<rect x="{x_of(col)}" y="{y}" width="{cell_w}" '
                f'height="{chan_h}" fill="#d62728" '
                f'fill-opacity="{opacity:.3f}"><title>'
                f'ch{channel} col{col}: {value}/{tracks}</title></rect>'
            )

    critical_cells = set(timing.get("path", []))
    for entry in snapshot.get("cells", []):
        row, col = entry.get("row", 0), entry.get("col", 0)
        name = entry.get("name", "")
        fill = "#ff9f1c" if name in critical_cells else "#dce6f2"
        parts.append(
            f'<rect x="{x_of(col) + 1}" y="{y_row(row) + 1}" '
            f'width="{cell_w - 2}" height="{cell_h - 2}" fill="{fill}" '
            f'stroke="#8899aa" stroke-width="0.5">'
            f'<title>{escape(name)} @ ({row},{col})</title></rect>'
        )

    nets_by_name = {
        entry.get("name"): entry for entry in snapshot.get("nets", [])
    }
    for net_name in _critical_nets(snapshot):
        net = nets_by_name.get(net_name)
        if net is None:
            continue
        for claim in net.get("claims", []):
            y = y_channel(claim.get("channel", 0)) + chan_h / 2
            x1 = x_of(claim.get("lo", 0)) + cell_w / 2
            x2 = x_of(claim.get("hi", 0)) + cell_w / 2
            parts.append(
                f'<line x1="{x1}" y1="{y}" x2="{x2}" y2="{y}" '
                f'stroke="#b30000" stroke-width="2" stroke-opacity="0.85">'
                f'<title>{escape(str(net_name))} ch{claim.get("channel")}'
                f'</title></line>'
            )
        trunk = net.get("vertical")
        if trunk is not None:
            x = x_of(trunk.get("column", 0)) + cell_w / 2
            y1 = y_channel(trunk.get("cmax", 0)) + chan_h / 2
            y2 = y_channel(trunk.get("cmin", 0)) + chan_h / 2
            parts.append(
                f'<line x1="{x}" y1="{y1}" x2="{x}" y2="{y2}" '
                f'stroke="#b30000" stroke-width="2" stroke-opacity="0.85">'
                f'<title>{escape(str(net_name))} trunk</title></line>'
            )

    parts.append("</svg>")
    return "\n".join(parts)

"""Console reporter: the one sanctioned way library code talks to users.

Library modules (flows, analysis, routers) must not ``print()`` — the
``no-print-in-library`` lint rule enforces it.  Anything user-facing
they have to say goes through a :class:`Console`, which callers can
redirect (tests capture it, harnesses silence it, the CLI points it at
stderr so machine-readable stdout stays clean).

The module-level default console writes to ``sys.stderr``.  Code holds
no global state beyond that default: pass an explicit ``Console`` where
a component should be independently redirectable.
"""

from __future__ import annotations

import sys
from typing import IO, Optional


class Console:
    """A destination for human-facing notices from library code."""

    def __init__(self, stream: Optional[IO[str]] = None) -> None:
        #: Target stream; None means "whatever sys.stderr is right now",
        #: so pytest's capture and CLI redirection both keep working.
        self._stream = stream

    @property
    def stream(self) -> IO[str]:
        """The stream notices are written to."""
        return self._stream if self._stream is not None else sys.stderr

    def note(self, message: str) -> None:
        """Emit one informational line."""
        self.stream.write(message + "\n")

    def warn(self, message: str) -> None:
        """Emit one warning line."""
        self.stream.write(f"warning: {message}\n")

    def error(self, message: str) -> None:
        """Emit one error line (the caller owns the exit code)."""
        self.stream.write(f"error: {message}\n")


#: Default console for library code with no injected destination.
DEFAULT_CONSOLE = Console()


def get_console() -> Console:
    """The default console (late-bound to the current ``sys.stderr``)."""
    return DEFAULT_CONSOLE

"""Layout snapshots: a JSON-serializable spatial image of a layout.

Where the trace (:mod:`repro.obs.events`) explains *when* the anneal's
cost moves, a snapshot explains *where* on the fabric it comes from:

* per-channel track occupancy and density profile (occupancy per
  column, max density vs. track capacity, segments used, utilization);
* per-column vertical occupancy and per-row feedthrough usage;
* per-net route geometry (trunk, channel claims, antifuse counts);
* a critical-path attribution table decomposing the timing engine's
  worst-case delay ``T`` into per-net and per-segment Elmore
  contributions that re-sum to ``T`` **bit-exactly**
  (:mod:`repro.timing.attribution`).

Snapshots are schema-versioned (:data:`SNAPSHOT_SCHEMA_VERSION`),
capturable standalone (:func:`capture_snapshot`), at stage boundaries
through the :class:`~repro.obs.tracer.Instrumentation` hook
(``--trace --snapshot-every N`` emits ``snapshot`` events into the
JSONL trace), and at flow end
(:func:`repro.flows.capture_flow_snapshot`).  Like the tracer, capture
reads no wall clock, consumes no RNG, and mutates no layout or engine
state — snapshotted runs are bit-identical to plain runs.

``repro-fpga xray`` renders snapshots (:mod:`repro.obs.xray`);
:func:`diff_snapshots` aligns two by net/cell name for the
sequential-vs-simultaneous spatial comparison.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from ..route.state import RoutingState
from ..timing.attribution import (
    critical_path_attribution,
    resummed_path_delay,
    resummed_segment_delay,
)

#: Version of the snapshot payload layout.  Adding an optional field is
#: compatible; removing or re-meaning one requires a bump (same
#: contract as ``TRACE_SCHEMA_VERSION``).
SNAPSHOT_SCHEMA_VERSION = 1

_TOP_REQUIRED = (
    "schema_version", "label", "design", "fabric", "channels", "vertical",
    "rows", "cells", "nets", "timing", "totals",
)
_CHANNEL_REQUIRED = (
    "index", "tracks", "width", "segments_used", "occupancy",
    "max_density", "utilization",
)
_NET_REQUIRED = (
    "name", "index", "globally_routed", "fully_routed", "bbox", "pins",
    "vertical", "claims", "antifuses",
)
_TIMING_REQUIRED = ("T", "engine_T", "endpoint", "path", "entries")
_ENTRY_REQUIRED = {
    "launch": ("cell", "delay"),
    "interconnect": ("net", "from", "to", "routed", "delay", "segments"),
    "cell": ("cell", "delay"),
}


def capture_snapshot(state: RoutingState, timing, label: str = "") -> dict:
    """Capture the spatial image of ``state`` with timing attribution.

    ``timing`` is the layout's :class:`~repro.timing.IncrementalTiming`.
    Pure read: no RNG, no wall clock, and no mutation of the routing
    state, fabric occupancy, or the timing engine's incremental fields
    (attribution works on a side-effect-free recompute), so capturing
    mid-anneal cannot perturb the run.
    """
    fabric = state.fabric
    placement = state.placement
    netlist = state.netlist

    channels = []
    for channel in fabric.channels:
        occupancy = channel.column_occupancy()
        channels.append({
            "index": channel.index,
            "tracks": channel.num_tracks,
            "width": channel.width,
            "segments_used": channel.segments_used(),
            "occupancy": occupancy,
            "max_density": max(occupancy) if occupancy else 0,
            "utilization": channel.utilization(),
        })

    vertical_columns = []
    for vcolumn in fabric.vcolumns:
        occupancy = vcolumn.channel_occupancy()
        vertical_columns.append({
            "column": vcolumn.column,
            "tracks": vcolumn.num_tracks,
            "segments_used": vcolumn.segments_used(),
            "occupancy": occupancy,
            "max_density": max(occupancy) if occupancy else 0,
        })

    # A trunk spanning channels [cmin, cmax] crosses every row between
    # them: rows cmin .. cmax-1.
    feedthroughs = [0] * fabric.rows
    for route in state.routes:
        vertical = route.vertical
        if vertical is not None:
            for row in range(vertical.cmin, vertical.cmax):
                feedthroughs[row] += 1

    cells = []
    for cell_index, (row, col) in placement.iter_placed():
        cells.append({
            "name": netlist.cells[cell_index].name,
            "row": row,
            "col": col,
            "pinmap": placement.pinmap_index(cell_index),
        })

    nets = []
    for route in state.routes:
        net = netlist.nets[route.net_index]
        claims = []
        for channel_index in sorted(route.claims):
            claim = route.claims[channel_index]
            claims.append({
                "channel": claim.channel,
                "track": claim.track,
                "first_seg": claim.first_seg,
                "last_seg": claim.last_seg,
                "lo": claim.lo,
                "hi": claim.hi,
                "segments": claim.num_segments,
                "antifuses": claim.num_antifuses,
            })
        trunk = None
        if route.vertical is not None:
            vclaim = route.vertical
            trunk = {
                "column": vclaim.column,
                "track": vclaim.track,
                "first_seg": vclaim.first_seg,
                "last_seg": vclaim.last_seg,
                "cmin": vclaim.cmin,
                "cmax": vclaim.cmax,
                "segments": vclaim.num_segments,
                "antifuses": vclaim.num_antifuses,
            }
        nets.append({
            "name": net.name,
            "index": route.net_index,
            "globally_routed": route.globally_routed,
            "fully_routed": route.fully_routed,
            "bbox": {
                "cmin": route.cmin, "cmax": route.cmax,
                "xmin": route.xmin, "xmax": route.xmax,
            },
            "pins": {
                str(channel): list(columns)
                for channel, columns in sorted(route.pin_channels.items())
            },
            "vertical": trunk,
            "claims": claims,
            "antifuses": {
                "horizontal": route.horizontal_antifuses(),
                "vertical": route.vertical_antifuses(),
                "cross": route.cross_antifuses(),
            },
        })

    used = state.used_track_segments()
    totals = {
        "claimed_segments": used,
        "fabric_segments_used": {
            "horizontal": sum(entry["segments_used"] for entry in channels),
            "vertical": sum(
                entry["segments_used"] for entry in vertical_columns
            ),
        },
        "antifuses": state.total_antifuses(),
        "global_unrouted": state.count_global_unrouted(),
        "detail_unrouted": state.count_detail_unrouted(),
        "fully_routed": state.is_complete(),
    }

    return {
        "schema_version": SNAPSHOT_SCHEMA_VERSION,
        "label": label,
        "design": {"name": netlist.name, **netlist.stats()},
        "fabric": {
            "rows": fabric.rows,
            "cols": fabric.cols,
            "num_channels": fabric.num_channels,
        },
        "channels": channels,
        "vertical": vertical_columns,
        "rows": [
            {"row": row, "feedthroughs": count}
            for row, count in enumerate(feedthroughs)
        ],
        "cells": cells,
        "nets": nets,
        "timing": critical_path_attribution(timing),
        "totals": totals,
    }


def validate_snapshot(payload: object) -> list[str]:
    """Structural + invariant problems in a snapshot (empty = valid).

    Beyond shape checks, verifies the payload's self-consistency
    invariants, all checkable offline:

    * attribution entries re-sum (left fold) to ``T`` bit-exactly, and
      each routed interconnect entry's per-segment delays re-sum to the
      entry's delay bit-exactly;
    * per-channel occupancy profiles are ``width``-long, bounded by the
      track count, and consistent with ``max_density``;
    * the claim-side used-segment totals equal the fabric-side
      ``segments_used`` sums (the two sides of the occupancy books).
    """
    if not isinstance(payload, dict):
        return ["snapshot is not a JSON object"]
    problems: list[str] = []
    version = payload.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        problems.append(
            f"unsupported snapshot schema_version {version!r} "
            f"(supported: {SNAPSHOT_SCHEMA_VERSION})"
        )
    for name in _TOP_REQUIRED:
        if name not in payload:
            problems.append(f"missing top-level field {name!r}")
    if problems:
        return problems

    for position, entry in enumerate(payload["channels"]):
        for name in _CHANNEL_REQUIRED:
            if name not in entry:
                problems.append(f"channel {position}: missing field {name!r}")
        occupancy = entry.get("occupancy")
        if isinstance(occupancy, list):
            if len(occupancy) != entry.get("width"):
                problems.append(
                    f"channel {position}: occupancy length {len(occupancy)} "
                    f"!= width {entry.get('width')}"
                )
            peak = max(occupancy) if occupancy else 0
            if entry.get("max_density") != peak:
                problems.append(
                    f"channel {position}: max_density "
                    f"{entry.get('max_density')} != profile max {peak}"
                )
            if occupancy and peak > entry.get("tracks", 0):
                problems.append(
                    f"channel {position}: density {peak} exceeds track "
                    f"capacity {entry.get('tracks')}"
                )

    for position, entry in enumerate(payload["nets"]):
        for name in _NET_REQUIRED:
            if name not in entry:
                problems.append(f"net {position}: missing field {name!r}")

    timing = payload["timing"]
    for name in _TIMING_REQUIRED:
        if name not in timing:
            problems.append(f"timing: missing field {name!r}")
    entries = timing.get("entries")
    if isinstance(entries, list):
        for position, entry in enumerate(entries):
            kind = entry.get("kind")
            required = _ENTRY_REQUIRED.get(kind)
            if required is None:
                problems.append(
                    f"timing entry {position}: unknown kind {kind!r}"
                )
                continue
            missing = [name for name in required if name not in entry]
            for name in missing:
                problems.append(
                    f"timing entry {position}: {kind} entry missing "
                    f"field {name!r}"
                )
            if kind == "interconnect" and not missing:
                rebuilt = resummed_segment_delay(entry)
                if rebuilt != entry["delay"]:
                    problems.append(
                        f"timing entry {position}: segment delays re-sum to "
                        f"{rebuilt!r}, entry delay is {entry['delay']!r}"
                    )
        if "T" in timing and not problems:
            rebuilt = resummed_path_delay(entries)
            if rebuilt != timing["T"]:
                problems.append(
                    f"timing: entries re-sum to {rebuilt!r}, "
                    f"T is {timing['T']!r}"
                )

    totals = payload["totals"]
    claimed = totals.get("claimed_segments", {})
    fabric_side = totals.get("fabric_segments_used", {})
    if claimed.get("horizontal_total") != fabric_side.get("horizontal"):
        problems.append(
            f"occupancy books disagree: claim-side horizontal "
            f"{claimed.get('horizontal_total')} vs fabric-side "
            f"{fabric_side.get('horizontal')}"
        )
    if claimed.get("vertical") != fabric_side.get("vertical"):
        problems.append(
            f"occupancy books disagree: claim-side vertical "
            f"{claimed.get('vertical')} vs fabric-side "
            f"{fabric_side.get('vertical')}"
        )
    per_channel = claimed.get("horizontal")
    if isinstance(per_channel, list):
        for entry in payload["channels"]:
            index = entry.get("index")
            if (
                isinstance(index, int)
                and 0 <= index < len(per_channel)
                and per_channel[index] != entry.get("segments_used")
            ):
                problems.append(
                    f"channel {index}: claim-side segments "
                    f"{per_channel[index]} vs fabric-side "
                    f"{entry.get('segments_used')}"
                )
    return problems


def write_snapshot(payload: dict, path: Union[str, Path]) -> None:
    """Write one snapshot as indented JSON, atomically."""
    from ..resilience.atomic import atomic_write_text

    atomic_write_text(
        path,
        json.dumps(payload, sort_keys=True, indent=1) + "\n",
        kind="snapshot",
    )


def read_snapshot(path: Union[str, Path]) -> dict:
    """Load a snapshot JSON file."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: snapshot is not a JSON object")
    return payload


def _critical_nets(payload: dict) -> list[str]:
    """Net names on the snapshot's critical path, in path order."""
    return [
        entry["net"]
        for entry in payload.get("timing", {}).get("entries", [])
        if entry.get("kind") == "interconnect" and "net" in entry
    ]


def diff_snapshots(a: dict, b: dict) -> dict:
    """Align two snapshots by net/cell name and report the deltas.

    Returns a JSON-serializable report: per-channel congestion deltas,
    per-row feedthrough deltas, critical-path membership churn, moved
    cells, and rerouted nets.  The snapshots should come from the same
    design (nets/cells align by name); differing fabrics are reported,
    not rejected.
    """
    report: dict = {
        "fabric_match": a.get("fabric") == b.get("fabric"),
        "labels": [a.get("label", ""), b.get("label", "")],
    }

    changed = []
    b_channels = {entry.get("index"): entry for entry in b.get("channels", [])}
    for entry in a.get("channels", []):
        other = b_channels.get(entry.get("index"))
        if other is None:
            continue
        if (
            entry.get("segments_used") != other.get("segments_used")
            or entry.get("max_density") != other.get("max_density")
            or entry.get("occupancy") != other.get("occupancy")
        ):
            changed.append({
                "channel": entry.get("index"),
                "segments_used": [
                    entry.get("segments_used"), other.get("segments_used")
                ],
                "max_density": [
                    entry.get("max_density"), other.get("max_density")
                ],
            })
    report["congestion"] = {
        "changed": changed,
        "horizontal_segments_used": [
            a["totals"]["fabric_segments_used"]["horizontal"],
            b["totals"]["fabric_segments_used"]["horizontal"],
        ],
        "vertical_segments_used": [
            a["totals"]["fabric_segments_used"]["vertical"],
            b["totals"]["fabric_segments_used"]["vertical"],
        ],
        "antifuses": [a["totals"]["antifuses"], b["totals"]["antifuses"]],
    }

    row_changes = []
    b_rows = {entry.get("row"): entry for entry in b.get("rows", [])}
    for entry in a.get("rows", []):
        other = b_rows.get(entry.get("row"))
        if other is not None and (
            entry.get("feedthroughs") != other.get("feedthroughs")
        ):
            row_changes.append({
                "row": entry.get("row"),
                "feedthroughs": [
                    entry.get("feedthroughs"), other.get("feedthroughs")
                ],
            })
    report["rows"] = {"changed": row_changes}

    path_a = _critical_nets(a)
    path_b = _critical_nets(b)
    set_a, set_b = set(path_a), set(path_b)
    report["timing"] = {
        "T": [a["timing"].get("T"), b["timing"].get("T")],
        "endpoint": [
            a["timing"].get("endpoint"), b["timing"].get("endpoint")
        ],
        "path": {
            "a": path_a,
            "b": path_b,
            "added": sorted(set_b - set_a),
            "removed": sorted(set_a - set_b),
            "common": sorted(set_a & set_b),
        },
    }

    cells_a = {entry["name"]: entry for entry in a.get("cells", [])}
    cells_b = {entry["name"]: entry for entry in b.get("cells", [])}
    moved = []
    for name in sorted(set(cells_a) & set(cells_b)):
        slot_a = [cells_a[name]["row"], cells_a[name]["col"]]
        slot_b = [cells_b[name]["row"], cells_b[name]["col"]]
        if slot_a != slot_b:
            moved.append({"name": name, "a": slot_a, "b": slot_b})
    report["cells"] = {
        "moved": moved,
        "aligned": len(set(cells_a) & set(cells_b)),
        "only_a": sorted(set(cells_a) - set(cells_b)),
        "only_b": sorted(set(cells_b) - set(cells_a)),
    }

    nets_a = {entry["name"]: entry for entry in a.get("nets", [])}
    nets_b = {entry["name"]: entry for entry in b.get("nets", [])}
    rerouted = []
    routing_state_changed = []
    for name in sorted(set(nets_a) & set(nets_b)):
        net_a, net_b = nets_a[name], nets_b[name]
        if net_a.get("fully_routed") != net_b.get("fully_routed"):
            routing_state_changed.append(name)
        if (
            net_a.get("vertical") != net_b.get("vertical")
            or net_a.get("claims") != net_b.get("claims")
        ):
            rerouted.append(name)
    report["nets"] = {
        "aligned": len(set(nets_a) & set(nets_b)),
        "rerouted": rerouted,
        "routing_state_changed": routing_state_changed,
        "only_a": sorted(set(nets_a) - set(nets_b)),
        "only_b": sorted(set(nets_b) - set(nets_a)),
    }
    return report

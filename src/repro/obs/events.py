"""Trace event schema, JSONL serialization, and validation.

A trace is an ordered list of flat JSON objects ("events"), one per
line on disk (JSONL).  The first event of every trace is ``run_start``,
which carries the schema version and the run manifest; the last, on a
run that finished, is ``run_end``.  In between, the annealer emits one
``stage`` event per temperature (the structured form of the paper's
Figure-6 per-temperature data: cost terms ``G``/``D``/``T``, adaptive
weights ``Wg``/``Wd``/``Wt``, acceptance, move-type accept/reject
counts, and per-stage metric deltas from the repair/cache/timing
layers).

Schema stability contract
-------------------------
``TRACE_SCHEMA_VERSION`` names the event vocabulary.  Removing an
event type, removing a required field, or changing a field's meaning
REQUIRES bumping the version; adding optional fields does not.  The
golden-file test (``tests/test_obs.py``) pins :func:`schema_descriptor`
so any vocabulary change forces an explicit version decision.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

#: Version of the event vocabulary written into every run manifest.
#: v2 added the ``checkpoint`` event (and the optional ``interrupted``
#: field on ``run_end``); v1 traces remain readable.
TRACE_SCHEMA_VERSION = 2

#: Schema versions :func:`validate_events` accepts.  Old traces stay
#: valid as long as every event type they use is still in the
#: vocabulary — v2 only added to v1.
SUPPORTED_SCHEMA_VERSIONS = frozenset({1, 2})

#: Event type -> required fields (beyond ``type`` itself).  Optional
#: fields may ride on any event; these are the floor a valid trace
#: must provide.
EVENT_REQUIRED: dict[str, tuple[str, ...]] = {
    "run_start": ("schema_version", "manifest"),
    "stage": ("index", "temperature", "attempts", "accepted", "acceptance"),
    "greedy": ("round", "attempts", "accepted"),
    "sanitizer_violation": ("phase", "problems"),
    "note": ("message",),
    "snapshot": ("snapshot",),
    "checkpoint": ("stage", "path"),
    "run_end": ("moves_attempted", "moves_accepted", "temperatures"),
}


def schema_descriptor() -> dict:
    """The schema as data, for the golden stability test."""
    return {
        "schema_version": TRACE_SCHEMA_VERSION,
        "events": {
            name: sorted(required)
            for name, required in sorted(EVENT_REQUIRED.items())
        },
    }


def validate_events(events: Iterable[dict]) -> list[str]:
    """Structural problems in an event stream (empty list = valid).

    Checks the envelope (``run_start`` first with a supported schema
    version, known event types, required fields present) — not value
    semantics, which belong to the analysis layer.
    """
    problems: list[str] = []
    first = True
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {position}: not a JSON object")
            first = False
            continue
        kind = event.get("type")
        if first:
            if kind != "run_start":
                problems.append(
                    f"event {position}: trace must open with run_start, "
                    f"got {kind!r}"
                )
            else:
                version = event.get("schema_version")
                if version not in SUPPORTED_SCHEMA_VERSIONS:
                    supported = ", ".join(
                        str(v) for v in sorted(SUPPORTED_SCHEMA_VERSIONS)
                    )
                    problems.append(
                        f"event {position}: unsupported schema_version "
                        f"{version!r} (supported: {supported})"
                    )
            first = False
        if kind not in EVENT_REQUIRED:
            problems.append(f"event {position}: unknown event type {kind!r}")
            continue
        for name in EVENT_REQUIRED[kind]:
            if name not in event:
                problems.append(
                    f"event {position}: {kind} event missing required "
                    f"field {name!r}"
                )
    if first:
        problems.append("trace is empty (no events)")
    return problems


@dataclass
class RunTrace:
    """One run's complete event stream, in emission order."""

    events: list[dict] = field(default_factory=list)

    # -- structure accessors -------------------------------------------
    @property
    def manifest(self) -> dict:
        """The run manifest from the opening ``run_start`` event."""
        if self.events and self.events[0].get("type") == "run_start":
            return self.events[0].get("manifest", {})
        return {}

    @property
    def schema_version(self) -> Optional[int]:
        """Schema version declared by the opening event, if any."""
        if self.events and self.events[0].get("type") == "run_start":
            return self.events[0].get("schema_version")
        return None

    def of_type(self, kind: str) -> list[dict]:
        """All events of one type, in order."""
        return [event for event in self.events if event.get("type") == kind]

    @property
    def stages(self) -> list[dict]:
        """The per-temperature ``stage`` events."""
        return self.of_type("stage")

    @property
    def run_end(self) -> Optional[dict]:
        """The closing ``run_end`` event (None if the run aborted)."""
        ends = self.of_type("run_end")
        return ends[-1] if ends else None

    def series(self, *path: str) -> list:
        """One column across the stage events, e.g. ``series('terms', 'T')``.

        Stages lacking the field are skipped, so the same accessor works
        on simultaneous traces (terms + weights) and sequential traces
        (scalar cost only).
        """
        values = []
        for stage in self.stages:
            node: object = stage
            for key in path:
                if not isinstance(node, dict) or key not in node:
                    node = None
                    break
                node = node[key]
            if node is not None:
                values.append(node)
        return values

    def validate(self) -> list[str]:
        """Structural problems in this trace (empty list = valid)."""
        return validate_events(self.events)

    # -- serialization -------------------------------------------------
    def to_jsonl(self) -> str:
        """The trace as JSONL text (one compact JSON object per line)."""
        return "".join(
            json.dumps(event, sort_keys=True, separators=(",", ":")) + "\n"
            for event in self.events
        )

    def write_jsonl(self, path: Union[str, Path]) -> None:
        """Write the trace to ``path`` as JSONL, atomically."""
        from ..resilience.atomic import atomic_write_text

        atomic_write_text(path, self.to_jsonl(), kind="trace")


def read_trace(path: Union[str, Path]) -> RunTrace:
    """Load a JSONL trace from disk.

    Raises ``ValueError`` on malformed JSON lines; structural schema
    problems are left to :meth:`RunTrace.validate` so tooling can load
    a slightly-off trace and still report what is wrong with it.
    """
    events: list[dict] = []
    text = Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}:{lineno}: malformed JSONL: {exc}") from exc
    return RunTrace(events)


def reconstructed_cost(stage_or_end: dict) -> Optional[float]:
    """``Wg*G + Wd*D + Wt*T`` recomputed from one event's fields.

    Returns None when the event lacks terms or weights (e.g. a
    sequential-flow stage).  Because events record the exact floats the
    annealer used, the reconstruction is bit-identical to the
    annealer's own scalarization — the acceptance test for the trace
    being a faithful window into the run.
    """
    terms = stage_or_end.get("terms")
    weights = stage_or_end.get("weights")
    if not terms or not weights:
        return None
    return (
        weights["wg"] * terms["G"]
        + weights["wd"] * terms["D"]
        + weights["wt"] * terms["T"]
    )

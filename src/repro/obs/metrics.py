"""Lightweight metrics registry: counters, gauges, histograms.

The registry is the *numeric* half of the observability layer (the
tracer in :mod:`repro.obs.tracer` is the *event* half).  Hot paths that
already carry a guarded profiler probe can carry a guarded metrics
probe under the same pattern::

    mx = self.metrics            # None unless tracing was requested
    if mx is not None:
        mx.count("repair.detail_ok")

Two hard rules keep instrumented runs bit-identical to plain runs
(the PR 2 sanitizer contract):

* **no wall-clock reads** — nothing in this module ever touches a
  timer; durations belong to :mod:`repro.perf`, which is explicitly
  telemetry-only.  All values recorded here are already-computed
  integers/floats of the run itself;
* **no RNG, no layout state** — recording is pure accumulation into
  plain dicts and lists.

``snapshot()`` is the only read API: an explicit, JSON-ready copy of
everything accumulated so far.  The tracer snapshots at stage
boundaries and emits per-stage *deltas*, so trace consumers see rates
(cache hits per temperature, repairs per temperature) without the hot
loop ever doing subtraction.
"""

from __future__ import annotations

import math
from typing import Optional, Union

Number = Union[int, float]

#: Histogram bucket upper bounds: powers of two up to 2**15, then +inf.
#: Fixed bounds (rather than adaptive ones) keep snapshots comparable
#: across runs and machines.
HISTOGRAM_BOUNDS: tuple[int, ...] = tuple(2 ** i for i in range(16))


class Histogram:
    """Fixed-bucket histogram over non-negative values."""

    __slots__ = ("buckets", "count", "total")

    def __init__(self) -> None:
        # One bucket per bound plus one overflow bucket.
        self.buckets: list[int] = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: Number) -> None:
        """Record one sample."""
        index = len(HISTOGRAM_BOUNDS)
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        """Mean of the observed samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile sample.

        Fixed buckets make this a conservative (rounded-up) estimate:
        the true sample lies at or below the returned bound.  Returns
        ``0.0`` for an empty histogram and ``math.inf`` when the
        quantile lands in the overflow bucket.  Raises ``ValueError``
        for ``q`` outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        target = max(1, math.ceil(q * self.count))
        cumulative = 0
        for i, tally in enumerate(self.buckets):
            cumulative += tally
            if cumulative >= target:
                if i < len(HISTOGRAM_BOUNDS):
                    return float(HISTOGRAM_BOUNDS[i])
                break
        return math.inf

    def summary(self) -> dict:
        """Count/sum/mean plus bucketed p50/p90/p99, JSON-ready.

        A quantile landing in the overflow bucket is ``math.inf`` from
        :meth:`quantile`, which ``json.dumps`` would emit as the
        non-standard token ``Infinity`` (strict parsers reject it) —
        summaries report it as ``None`` instead, meaning "beyond the
        top finite bound".
        """
        def finite(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": finite(self.quantile(0.5)),
            "p90": finite(self.quantile(0.9)),
            "p99": finite(self.quantile(0.99)),
        }

    def as_dict(self) -> dict:
        """JSON-ready snapshot of this histogram."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named counters, gauges, and histograms with explicit snapshots."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- hot-path probes (call only under an ``is not None`` guard) ----
    def count(self, name: str, n: int = 1) -> None:
        """Bump a monotonically increasing counter."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: Number) -> None:
        """Set a point-in-time value (last write wins)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Record one histogram sample."""
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    # -- reads ---------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready copy of everything accumulated so far.

        The one read API: callers diff successive snapshots to turn the
        monotone counters into per-interval rates (see
        :func:`counter_delta`).
        """
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: histogram.as_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }


def counter_delta(before: dict, after: dict) -> dict[str, int]:
    """Counter increments between two :meth:`MetricsRegistry.snapshot` calls.

    Only counters that moved appear in the result, so per-stage trace
    events stay compact on stages where nothing interesting happened.
    """
    old = before.get("counters", {})
    new = after.get("counters", {})
    return {
        name: value - old.get(name, 0)
        for name, value in sorted(new.items())
        if value != old.get(name, 0)
    }


def maybe_metrics(enabled: bool) -> Optional[MetricsRegistry]:
    """Registry when enabled, None otherwise (guarded-probe pattern)."""
    return MetricsRegistry() if enabled else None

"""The event tracer and the shared instrumentation hook point.

:class:`Tracer` is the event half of the observability layer.  It
follows the same guarded-probe discipline as :class:`repro.perf.Profiler`:
when tracing is off the hot loop pays one ``is not None`` test per
probe site and nothing else; when it is on, recording is append-only
accumulation of already-computed values — no wall-clock reads, no RNG,
no layout state — so a traced run is bit-identical to an untraced run
with the same seed (``tests/test_obs.py`` guards this).

:class:`Instrumentation` is the one place the three observability
facilities (``--profile``, ``--trace``, ``--sanitize``) are
constructed from an :class:`~repro.core.AnnealerConfig`-shaped config.
The annealer asks it for everything instead of growing three
independent wiring paths; anything new (a future ``--debug``?) plugs
in here.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any, Optional

from ..perf import Profiler, maybe_profiler
from .events import TRACE_SCHEMA_VERSION, RunTrace
from .metrics import MetricsRegistry, counter_delta


def config_digest(config: Any, exclude: tuple = ()) -> str:
    """Short, stable digest of a (possibly nested) config dataclass.

    Two runs with equal digests ran under identical knobs; trace
    diffing uses this to tell "same config, different seed" apart from
    "different experiment".  The seed is part of the digest input —
    callers that want a coarser identity pass the top-level field names
    to drop via ``exclude`` (the run ledger's ``family_digest`` drops
    the seed and every proven-non-identity knob this way, see
    :data:`repro.obs.ledger.FAMILY_EXCLUDE`).
    """
    record = dataclasses.asdict(config) if dataclasses.is_dataclass(config) else dict(config)
    for name in exclude:
        record.pop(name, None)
    canonical = json.dumps(record, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    config: Any,
    netlist: Any = None,
    flow: str = "simultaneous",
    extra: Optional[dict] = None,
) -> dict:
    """The run manifest carried by the opening ``run_start`` event.

    Everything needed to interpret (and re-run) the trace: package
    version, flow, seed, the full config with its digest, and the
    netlist's summary statistics.
    """
    from .. import __version__

    record = (
        dataclasses.asdict(config) if dataclasses.is_dataclass(config) else {}
    )
    manifest: dict = {
        "package_version": __version__,
        "flow": flow,
        "seed": getattr(config, "seed", None),
        "config_digest": config_digest(config),
        "config": record,
    }
    if netlist is not None:
        manifest["netlist"] = {"name": netlist.name, **netlist.stats()}
    if extra:
        manifest.update(extra)
    return manifest


class Tracer:
    """Mutable event accumulator for one run (see module docstring).

    With ``stream_path`` set, every emitted event is *also* appended to
    that file as one compact JSON line, flushed immediately, using the
    exact serialization :meth:`RunTrace.to_jsonl` uses — so the stream
    a live watcher tail-follows (see :mod:`repro.obs.live`) is
    byte-identical to the final atomic trace written at run end.
    Streaming writes already-computed values on the cool stage-boundary
    path — no RNG, no clock — so a streamed run stays bit-identical.
    """

    __slots__ = ("events", "metrics", "stream_path", "_move_counts",
                 "_metrics_mark", "_stream")

    def __init__(self, stream_path: Optional[str] = None) -> None:
        self.events: list[dict] = []
        self.metrics = MetricsRegistry()
        self.stream_path = stream_path
        # Truncate eagerly: a fresh run must not leave a stale stream
        # tail from a previous run for a watcher to misread.
        self._stream = (
            open(stream_path, "w", encoding="utf-8")
            if stream_path is not None else None
        )
        # Per-stage move-kind accept/reject counts, reset every stage.
        self._move_counts: dict[str, list[int]] = {}
        self._metrics_mark: dict = self.metrics.snapshot()

    # -- hot-path probe (call only under an ``is not None`` guard) -----
    def count_move(self, kind: str, accepted: bool) -> None:
        """Tally one proposed move of ``kind`` into the current stage."""
        counts = self._move_counts.get(kind)
        if counts is None:
            counts = self._move_counts[kind] = [0, 0]
        counts[0 if accepted else 1] += 1

    # -- stage-boundary emission ---------------------------------------
    def emit(self, kind: str, **fields: Any) -> dict:
        """Append one event (cool path: once per stage / run phase)."""
        event = {"type": kind, **fields}
        self.events.append(event)
        stream = self._stream
        if stream is not None:
            stream.write(
                json.dumps(event, sort_keys=True, separators=(",", ":"))
                + "\n"
            )
            stream.flush()
        return event

    def run_start(self, manifest: dict) -> None:
        """Open the trace with the schema version and run manifest."""
        self.emit(
            "run_start",
            schema_version=TRACE_SCHEMA_VERSION,
            manifest=manifest,
        )

    def stage(self, **fields: Any) -> None:
        """Emit one per-temperature stage event.

        Attaches (and resets) the stage's move-kind tallies and the
        metric counter deltas since the previous stage boundary.
        """
        if self._move_counts:
            fields["moves"] = {
                kind: {"accepted": counts[0], "rejected": counts[1]}
                for kind, counts in sorted(self._move_counts.items())
            }
            self._move_counts = {}
        mark = self.metrics.snapshot()
        delta = counter_delta(self._metrics_mark, mark)
        if delta:
            fields["metrics"] = delta
        self._metrics_mark = mark
        self.emit("stage", **fields)

    def snapshot(self, payload: dict, **fields: Any) -> None:
        """Emit one layout ``snapshot`` event.

        ``payload`` is a :mod:`repro.obs.snapshot` capture (its own
        ``SNAPSHOT_SCHEMA_VERSION`` rides inside); optional fields like
        ``stage`` mark where in the run it was taken.
        """
        self.emit("snapshot", snapshot=payload, **fields)

    def sanitizer_violation(self, phase: str, move: Any,
                            problems: list[str]) -> None:
        """Record a sanitizer violation (emitted just before it raises)."""
        self.emit(
            "sanitizer_violation",
            phase=phase,
            move=repr(move),
            problems=list(problems),
        )

    def run_end(self, **fields: Any) -> None:
        """Close the trace with final terms and the full metrics snapshot."""
        fields["metrics_snapshot"] = self.metrics.snapshot()
        self.emit("run_end", **fields)

    def finish(self) -> RunTrace:
        """Freeze the accumulated events into a :class:`RunTrace`.

        Closes the live stream, if one was open — the finished trace is
        about to be written atomically over it (or kept as-is).
        """
        stream = self._stream
        if stream is not None:
            self._stream = None
            stream.close()
        return RunTrace(list(self.events))


def maybe_tracer(
    enabled: bool, stream_path: Optional[str] = None
) -> Optional[Tracer]:
    """Tracer when enabled, None otherwise (guarded-probe pattern)."""
    return Tracer(stream_path=stream_path) if enabled else None


@dataclasses.dataclass
class Instrumentation:
    """The bundle of per-run observability hooks, built in one place.

    ``profiler`` times hot-loop sections (:mod:`repro.perf`);
    ``tracer`` records structured events and owns the metrics registry;
    ``sanitizer`` cross-checks move-transaction invariants
    (:mod:`repro.lint.runtime`).  All three are optional and mutually
    composable — any subset can be on, and none of them may perturb
    the run's results.
    """

    profiler: Optional[Profiler] = None
    tracer: Optional[Tracer] = None
    sanitizer: Optional[Any] = None
    #: Live heartbeat sidecar writer (see :mod:`repro.obs.live`);
    #: None when ``config.heartbeat_path`` is unset.  Like the others,
    #: it never perturbs results: telemetry is a pure read and the
    #: writer touches only monotonic clocks.
    heartbeat: Optional[Any] = None
    #: Emit a layout ``snapshot`` event every N stages (0 = never).
    #: Only meaningful when ``tracer`` is present.
    snapshot_every: int = 0
    #: Write a resumable checkpoint every N stages (0 = only the final
    #: one); requires ``checkpoint_path`` (see :mod:`repro.resilience`).
    checkpoint_every: int = 0
    #: Destination for periodic and final checkpoints (None = none).
    checkpoint_path: Optional[str] = None

    @property
    def metrics(self) -> Optional[MetricsRegistry]:
        """The tracer's metrics registry (None when tracing is off)."""
        return self.tracer.metrics if self.tracer is not None else None

    @classmethod
    def from_config(cls, config: Any) -> "Instrumentation":
        """Build every requested hook from one annealer-style config.

        Reads ``config.profile``, ``config.trace``, ``config.sanitize``,
        ``config.sanitize_every``, ``config.snapshot_every``,
        ``config.checkpoint_every``, ``config.checkpoint_path``,
        ``config.trace_stream``, ``config.heartbeat_path`` and
        ``config.heartbeat_min_interval_s`` (each optional, default
        off) — the single shared wiring point behind ``--profile``,
        ``--trace``, ``--sanitize``, ``--snapshot-every``,
        ``--checkpoint`` and ``--heartbeat``.
        """
        sanitizer = None
        if getattr(config, "sanitize", False):
            from ..lint.runtime import MoveSanitizer

            sanitizer = MoveSanitizer(getattr(config, "sanitize_every", 1))
        heartbeat = None
        heartbeat_path = getattr(config, "heartbeat_path", None)
        if heartbeat_path is not None:
            from .live import HeartbeatWriter

            heartbeat = HeartbeatWriter(
                heartbeat_path,
                float(getattr(config, "heartbeat_min_interval_s", 2.0)),
            )
        checkpoint_path = getattr(config, "checkpoint_path", None)
        stream_path = getattr(config, "trace_stream", None)
        return cls(
            profiler=maybe_profiler(getattr(config, "profile", False)),
            tracer=maybe_tracer(
                getattr(config, "trace", False),
                stream_path=(
                    str(stream_path) if stream_path is not None else None
                ),
            ),
            sanitizer=sanitizer,
            heartbeat=heartbeat,
            snapshot_every=int(getattr(config, "snapshot_every", 0) or 0),
            checkpoint_every=int(getattr(config, "checkpoint_every", 0) or 0),
            checkpoint_path=(
                str(checkpoint_path) if checkpoint_path is not None else None
            ),
        )

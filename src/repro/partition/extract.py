"""Extract per-chip netlists from a partition.

After partitioning, each block becomes its own FPGA: nets that cross
the cut are severed at the chip boundary, with an ``output`` pad added
on the driving chip and an ``input`` pad on every reading chip (the
physical inter-chip wire is outside our scope).  The extracted netlists
are ordinary :class:`~repro.netlist.Netlist` objects, ready for either
layout flow — which is exactly how a multi-FPGA flow feeds the paper's
single-chip engine.
"""

from __future__ import annotations

from ..netlist.cell import Cell
from ..netlist.net import Net, Terminal
from ..netlist.netlist import Netlist
from .fm import Partition


def extract_block_netlist(partition: Partition, block_id: int) -> Netlist:
    """The standalone netlist of one partition block.

    Boundary pads are named ``xport_<net>`` (exported, output pad on
    the driving chip) and ``iport_<net>`` (imported, input pad on a
    reading chip).
    """
    source = partition.netlist
    members = {
        cell.name
        for cell in source.cells
        if partition.side_of[cell.index] == block_id
    }
    if not members:
        raise ValueError(f"block {block_id} is empty")
    chip = Netlist(f"{source.name}_chip{block_id}")
    for cell in source.cells:
        if cell.name in members:
            chip.add_cell(Cell(cell.name, cell.kind, num_inputs=cell.num_inputs))

    pending_nets: list[Net] = []
    for net in source.nets:
        driver_inside = net.driver[0] in members
        local_sinks: tuple[Terminal, ...] = tuple(
            sink for sink in net.sinks if sink[0] in members
        )
        foreign_sinks = len(net.sinks) - len(local_sinks)
        if driver_inside:
            sinks = list(local_sinks)
            if foreign_sinks:
                pad = f"xport_{net.name}"
                chip.add_cell(Cell(pad, "output", num_inputs=1))
                sinks.append((pad, "pad_in"))
            if sinks:
                pending_nets.append(Net(net.name, net.driver, tuple(sinks)))
        elif local_sinks:
            pad = f"iport_{net.name}"
            chip.add_cell(Cell(pad, "input"))
            pending_nets.append(
                Net(net.name, (pad, "pad_out"), local_sinks)
            )
    for net in pending_nets:
        chip.add_net(net)
    return chip.freeze()


def extract_all_blocks(partition: Partition) -> dict[int, Netlist]:
    """One netlist per block id."""
    return {
        block_id: extract_block_netlist(partition, block_id)
        for block_id in sorted(partition.block_sizes())
    }

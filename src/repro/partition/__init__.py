"""Multi-FPGA partitioning substrate (Fiduccia-Mattheyses)."""

from .extract import extract_all_blocks, extract_block_netlist
from .fm import Partition, bipartition, cut_size, kway_partition

__all__ = [
    "Partition",
    "bipartition",
    "cut_size",
    "extract_all_blocks",
    "extract_block_netlist",
    "kway_partition",
]

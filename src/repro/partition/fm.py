"""Fiduccia-Mattheyses bipartitioning for multi-FPGA designs.

Circuits too large for one device must be split across chips; the
paper's Section 2.2 surveys this stage: "Most previous partitioning
work is based on the Kernighan-Lin bipartitioning technique [19] with
the Fiduccia-Matheyses modifications [20]".  This module implements
that algorithm over the same netlists the layout flows consume, so a
multi-chip front end can feed per-chip layout runs (see
``examples/multi_chip.py``).

Standard FM machinery:

* cells are unit-weight vertices, nets are hyperedges;
* the gain of moving a cell is the cut-size change it would cause,
  maintained per cell from each net's side-distribution;
* one *pass* tentatively moves every cell exactly once, always the
  highest-gain unlocked cell whose move keeps the balance constraint,
  then rewinds to the best prefix of the move sequence;
* passes repeat until one fails to improve the cut.

Cut size = number of nets with cells on both sides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from ..netlist.netlist import Netlist


@dataclass
class Partition:
    """Result of a (bi)partitioning run."""

    netlist: Netlist
    side_of: list[int]  # cell index -> block id
    cut_size: int
    passes: int = 0
    history: list[int] = field(default_factory=list)  # cut after each pass

    def block(self, block_id: int) -> list[str]:
        """Cell names assigned to the given block."""
        return [
            cell.name
            for cell in self.netlist.cells
            if self.side_of[cell.index] == block_id
        ]

    def block_sizes(self) -> dict[int, int]:
        """Block id -> number of cells."""
        sizes: dict[int, int] = {}
        for side in self.side_of:
            sizes[side] = sizes.get(side, 0) + 1
        return sizes

    def __repr__(self) -> str:
        return (
            f"Partition({self.netlist.name!r}, blocks={self.block_sizes()}, "
            f"cut={self.cut_size})"
        )


def cut_size(netlist: Netlist, side_of: list[int]) -> int:
    """Number of nets spanning more than one block."""
    cut = 0
    for net in netlist.nets:
        sides = {side_of[netlist.cell(c).index] for c in net.cells()}
        if len(sides) > 1:
            cut += 1
    return cut


def _balanced_bounds(total: int, tolerance: float) -> tuple[int, int]:
    low = int(total * (0.5 - tolerance))
    high = total - low
    return max(1, low), min(total - 1, high)


class _FMPass:
    """One FM pass over a working bipartition (sides 0/1)."""

    def __init__(
        self,
        netlist: Netlist,
        side_of: list[int],
        low: int,
        high: int,
        rng: random.Random,
    ) -> None:
        self.netlist = netlist
        self.side_of = side_of
        self.low, self.high = low, high
        self.rng = rng
        self.locked = [False] * netlist.num_cells
        # Per net: how many of its cells are on each side.
        self.counts = [[0, 0] for _ in netlist.nets]
        for net in netlist.nets:
            for cell_name in net.cells():
                index = netlist.cell(cell_name).index
                self.counts[net.index][side_of[index]] += 1
        self.gains = [self._gain(c) for c in range(netlist.num_cells)]
        self.side_count = [
            side_of.count(0),
            side_of.count(1),
        ]

    def _gain(self, cell_index: int) -> int:
        """Cut-size reduction if ``cell_index`` switched sides."""
        from_side = self.side_of[cell_index]
        to_side = 1 - from_side
        gain = 0
        for net_index in self.netlist.nets_of_cell(cell_index):
            distinct = len(self.netlist.nets[net_index].cells())
            if distinct <= 1:
                continue  # single-cell nets can never be cut
            counts = self.counts[net_index]
            if counts[from_side] == 1:
                gain += 1  # the move uncuts this net
            if counts[to_side] == 0:
                gain -= 1  # the move newly cuts this net
        return gain

    def _movable(self, cell_index: int) -> bool:
        if self.locked[cell_index]:
            return False
        from_side = self.side_of[cell_index]
        return self.side_count[from_side] - 1 >= self.low

    def _best_cell(self) -> Optional[int]:
        best: Optional[int] = None
        best_gain = None
        for cell_index in range(self.netlist.num_cells):
            if not self._movable(cell_index):
                continue
            gain = self.gains[cell_index]
            if best_gain is None or gain > best_gain:
                best, best_gain = cell_index, gain
        return best

    def _apply(self, cell_index: int) -> None:
        from_side = self.side_of[cell_index]
        to_side = 1 - from_side
        self.side_of[cell_index] = to_side
        self.side_count[from_side] -= 1
        self.side_count[to_side] += 1
        self.locked[cell_index] = True
        touched: set[int] = set()
        for net_index in self.netlist.nets_of_cell(cell_index):
            self.counts[net_index][from_side] -= 1
            self.counts[net_index][to_side] += 1
            for cell_name in self.netlist.nets[net_index].cells():
                touched.add(self.netlist.cell(cell_name).index)
        for other in sorted(touched):
            if not self.locked[other]:
                self.gains[other] = self._gain(other)

    def run(self) -> tuple[int, list[int]]:
        """Execute the pass; returns (best gain prefix sum, move list)."""
        moves: list[int] = []
        gains: list[int] = []
        while True:
            cell_index = self._best_cell()
            if cell_index is None:
                break
            gains.append(self.gains[cell_index])
            moves.append(cell_index)
            self._apply(cell_index)
        # Best prefix of the tentative move sequence.
        best_sum, best_len, running = 0, 0, 0
        for position, gain in enumerate(gains, start=1):
            running += gain
            if running > best_sum:
                best_sum, best_len = running, position
        # Rewind the tail beyond the best prefix.
        for cell_index in moves[best_len:]:
            side = self.side_of[cell_index]
            self.side_of[cell_index] = 1 - side
        return best_sum, moves[:best_len]


def bipartition(
    netlist: Netlist,
    seed: int = 0,
    balance_tolerance: float = 0.1,
    max_passes: int = 12,
    initial: Optional[list[int]] = None,
) -> Partition:
    """FM bipartition of a netlist into blocks 0 and 1."""
    netlist.freeze()
    if netlist.num_cells < 2:
        raise ValueError("cannot bipartition fewer than 2 cells")
    if not 0 <= balance_tolerance < 0.5:
        raise ValueError(
            f"balance_tolerance must be in [0, 0.5), got {balance_tolerance}"
        )
    rng = random.Random(seed)
    if initial is not None:
        if len(initial) != netlist.num_cells or set(initial) - {0, 1}:
            raise ValueError("initial must assign each cell to side 0 or 1")
        side_of = list(initial)
    else:
        side_of = [0] * netlist.num_cells
        for index in rng.sample(range(netlist.num_cells), netlist.num_cells // 2):
            side_of[index] = 1
    low, high = _balanced_bounds(netlist.num_cells, balance_tolerance)

    history = [cut_size(netlist, side_of)]
    passes = 0
    for _ in range(max_passes):
        fm_pass = _FMPass(netlist, side_of, low, high, rng)
        improvement, _ = fm_pass.run()
        passes += 1
        history.append(cut_size(netlist, side_of))
        if improvement <= 0:
            break
    return Partition(netlist, side_of, history[-1], passes, history)


def kway_partition(
    netlist: Netlist,
    k: int,
    seed: int = 0,
    balance_tolerance: float = 0.1,
) -> Partition:
    """Recursive bisection into ``k`` blocks (k must be a power of two)."""
    if k < 1 or k & (k - 1):
        raise ValueError(f"k must be a power of two >= 1, got {k}")
    netlist.freeze()
    side_of = [0] * netlist.num_cells
    blocks = {0: list(range(netlist.num_cells))}
    next_id = 1
    while len(blocks) < k:
        # Split the largest block.
        block_id = max(blocks, key=lambda b: len(blocks[b]))
        members = blocks.pop(block_id)
        # Local FM on the induced subproblem, expressed as an initial
        # labelling over the full netlist with non-members locked by
        # exclusion from the movable set via balance bookkeeping: we
        # simply run FM on a membership projection.
        projection = _project_bipartition(
            netlist, members, seed + next_id, balance_tolerance
        )
        left = [m for m, side in zip(members, projection) if side == 0]
        right = [m for m, side in zip(members, projection) if side == 1]
        blocks[block_id] = left
        blocks[next_id] = right
        for member in right:
            side_of[member] = next_id
        for member in left:
            side_of[member] = block_id
        next_id += 1
    return Partition(netlist, side_of, cut_size(netlist, side_of))


def _project_bipartition(
    netlist: Netlist, members: list[int], seed: int, tolerance: float
) -> list[int]:
    """Bipartition the sub-hypergraph induced by ``members``.

    Builds a small standalone hypergraph (member cells, nets restricted
    to members with >= 2 member cells) and runs the same FM pass logic
    on it.
    """
    member_set = set(members)
    index_of = {cell: i for i, cell in enumerate(members)}
    hyperedges: list[list[int]] = []
    for net in netlist.nets:
        local = [
            index_of[netlist.cell(c).index]
            for c in net.cells()
            if netlist.cell(c).index in member_set
        ]
        if len(local) >= 2:
            hyperedges.append(local)
    return _raw_fm(len(members), hyperedges, seed, tolerance)


def _raw_fm(
    num_vertices: int,
    hyperedges: list[list[int]],
    seed: int,
    tolerance: float,
    max_passes: int = 12,
) -> list[int]:
    """FM over a plain hypergraph (used by recursive bisection)."""
    rng = random.Random(seed)
    side_of = [0] * num_vertices
    for index in rng.sample(range(num_vertices), num_vertices // 2):
        side_of[index] = 1
    if num_vertices < 2:
        return side_of
    low, _ = _balanced_bounds(num_vertices, tolerance)
    edges_of = [[] for _ in range(num_vertices)]
    for edge_index, edge in enumerate(hyperedges):
        for vertex in sorted(set(edge)):
            edges_of[vertex].append(edge_index)

    def edge_cut() -> int:
        return sum(
            1 for edge in hyperedges if len({side_of[v] for v in edge}) > 1
        )

    for _ in range(max_passes):
        counts = [[0, 0] for _ in hyperedges]
        for edge_index, edge in enumerate(hyperedges):
            for vertex in sorted(set(edge)):
                counts[edge_index][side_of[vertex]] += 1
        side_count = [side_of.count(0), side_of.count(1)]
        locked = [False] * num_vertices

        def gain(vertex: int) -> int:
            from_side = side_of[vertex]
            to_side = 1 - from_side
            value = 0
            for edge_index in edges_of[vertex]:
                if counts[edge_index][from_side] == 1:
                    value += 1
                if counts[edge_index][to_side] == 0:
                    value -= 1
            return value

        gains = [gain(v) for v in range(num_vertices)]
        moves: list[int] = []
        gain_trace: list[int] = []
        while True:
            best, best_gain = None, None
            for vertex in range(num_vertices):
                if locked[vertex]:
                    continue
                if side_count[side_of[vertex]] - 1 < low:
                    continue
                if best_gain is None or gains[vertex] > best_gain:
                    best, best_gain = vertex, gains[vertex]
            if best is None:
                break
            moves.append(best)
            gain_trace.append(gains[best])
            from_side = side_of[best]
            to_side = 1 - from_side
            side_of[best] = to_side
            side_count[from_side] -= 1
            side_count[to_side] += 1
            locked[best] = True
            touched: set[int] = set()
            for edge_index in edges_of[best]:
                counts[edge_index][from_side] -= 1
                counts[edge_index][to_side] += 1
                touched.update(hyperedges[edge_index])
            for vertex in sorted(touched):
                if not locked[vertex]:
                    gains[vertex] = gain(vertex)
        best_sum, best_len, running = 0, 0, 0
        for position, value in enumerate(gain_trace, start=1):
            running += value
            if running > best_sum:
                best_sum, best_len = running, position
        for vertex in moves[best_len:]:
            side_of[vertex] = 1 - side_of[vertex]
        if best_sum <= 0:
            break
    return side_of

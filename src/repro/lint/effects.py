"""Transitive per-function effect inference over the call graph.

Built on :class:`repro.lint.callgraph.Program`: the scanner there
records, for every function, its *direct* effect sites (field writes,
container mutators, entropy/wall-clock/filesystem/stdout calls) and its
call sites with argument origins.  This module propagates those effects
transitively — a function that calls ``state.rip_up(...)`` inherits
"mutates param:state" with the callee's ``mutates self`` mapped through
the receiver binding — until a fixed point is reached.

Effect vocabulary (normalized tuples):

``("mutates", "self" | "param:<name>" | "global")``
    A caller-visible object is definitely written.
``("maybe_mutates", ...)``
    Same targets, but the write is only *possible* — an unresolved call
    received the object.  Deep rules never promote a maybe to a
    finding; they only use it to *suppress* stale-declaration findings
    (imprecision costs recall, never precision).
``("entropy",) / ("wallclock",) / ("filesystem",) / ("stdout",)``
    Environment effects.  Seeded ``random.Random`` instances and the
    telemetry clocks (``perf_counter`` / ``monotonic`` family) are
    whitelisted at the extraction layer and never appear here.

Mutations of freshly constructed objects (origin ``new``) are dropped
at the call site: building and populating a local journal is not an
effect the caller's caller can observe.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .callgraph import (
    ORIGIN_GLOBAL,
    ORIGIN_NEW,
    ORIGIN_SELF,
    ORIGIN_UNKNOWN,
    CallSite,
    Program,
)

#: Effect kinds that carry no target payload.
ENVIRONMENT_KINDS = ("entropy", "wallclock", "filesystem", "stdout")


def _origin_target(origin: Optional[tuple]) -> Optional[str]:
    """Mutation-target token for an origin, or None when unobservable."""
    if origin is None or origin == ORIGIN_NEW:
        return None
    if origin == ORIGIN_SELF:
        return "self"
    if origin == ORIGIN_GLOBAL:
        return "global"
    if origin == ORIGIN_UNKNOWN:
        return "unknown"
    if origin[0] == "param":
        return f"param:{origin[1]}"
    return "unknown"


class EffectAnalysis:
    """Fixed-point effect propagation over a :class:`Program`."""

    def __init__(self, program: Program) -> None:
        self.program = program
        #: fn id -> frozen set of normalized direct effects.
        self.direct: dict[str, set] = {}
        #: fn id -> full transitive effect set.
        self.effects: dict[str, set] = {}
        #: (fn id, effect) -> (callee id, lineno) that introduced it,
        #: or None when the effect is direct.  First writer wins, which
        #: combined with the sorted iteration order makes provenance
        #: deterministic.
        self.via: dict[tuple, Optional[tuple]] = {}
        self._propagate()

    # ------------------------------------------------------------------
    # Direct effects
    # ------------------------------------------------------------------
    def _direct_effects(self, fn_id: str) -> set:
        out = set()
        for site in self.program.functions[fn_id].effect_sites:
            if site.kind in ("mutates", "maybe_mutates"):
                out.add((site.kind, site.target))
            else:
                out.add((site.kind,))
        return out

    # ------------------------------------------------------------------
    # Call-site mapping
    # ------------------------------------------------------------------
    def map_effect(self, effect: tuple, site: CallSite) -> Optional[tuple]:
        """Translate one callee effect into the caller's frame."""
        kind = effect[0]
        if kind in ENVIRONMENT_KINDS:
            return effect
        if kind not in ("mutates", "maybe_mutates"):
            return None
        target = effect[1]
        if target == "self":
            origin = site.receiver_origin
        elif target.startswith("param:"):
            origin = site.arg_origins.get(target[6:])
            if origin is None:
                # Bound through *args/**kwargs or left at its default:
                # anything escaping in the loose bucket might be it.
                loose = [
                    _origin_target(o)
                    for o in site.loose_origins
                    if _origin_target(o) not in (None, "unknown")
                ]
                if loose:
                    return ("maybe_mutates", sorted(loose)[0])
                return None
        elif target == "global":
            return (kind, "global")
        else:  # "unknown"
            return ("maybe_mutates", "unknown")
        mapped = _origin_target(origin)
        if mapped is None:
            return None
        if mapped == "unknown":
            return ("maybe_mutates", "unknown")
        if kind == "maybe_mutates":
            return ("maybe_mutates", mapped)
        return ("mutates", mapped)

    def map_call(self, site: CallSite) -> set:
        """Caller-frame effects contributed by one call site."""
        if site.callee is None:
            return set()
        callee_effects = self.effects.get(site.callee, set())
        out = set()
        for effect in callee_effects:
            mapped = self.map_effect(effect, site)
            if mapped is not None:
                out.add(mapped)
        return out

    # ------------------------------------------------------------------
    # Fixed point
    # ------------------------------------------------------------------
    def _propagate(self) -> None:
        order = sorted(self.program.functions)
        for fn_id in order:
            direct = self._direct_effects(fn_id)
            self.direct[fn_id] = direct
            self.effects[fn_id] = set(direct)
            for effect in direct:
                self.via.setdefault((fn_id, effect), None)
        changed = True
        while changed:
            changed = False
            for fn_id in order:
                current = self.effects[fn_id]
                for site in self.program.functions[fn_id].call_sites:
                    if site.callee is None:
                        continue
                    for effect in sorted(self.effects.get(site.callee, ())):
                        mapped = self.map_effect(effect, site)
                        if mapped is not None and mapped not in current:
                            current.add(mapped)
                            self.via.setdefault(
                                (fn_id, mapped), (site.callee, site.lineno)
                            )
                            changed = True

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def mutated_targets(self, fn_id: str) -> set:
        """Definite mutation targets (``self`` / ``param:x`` / ``global``)."""
        return {
            e[1] for e in self.effects.get(fn_id, ()) if e[0] == "mutates"
        }

    def maybe_targets(self, fn_id: str) -> set:
        """Possible mutation targets via unresolved calls."""
        return {
            e[1]
            for e in self.effects.get(fn_id, ())
            if e[0] == "maybe_mutates"
        }

    def provenance_chain(self, fn_id: str, effect: tuple) -> list:
        """``[(fn, lineno), ...]`` from ``fn_id`` down to the direct site."""
        chain = []
        current = fn_id
        seen = set()
        while current not in seen:
            seen.add(current)
            step = self.via.get((current, effect))
            if step is None:
                break
            callee, lineno = step
            chain.append((current, lineno))
            current = callee
        chain.append((current, None))
        return chain

    def branch_effects(self, fn_id: str, node_ids: Iterable[int]) -> set:
        """Effect set contributed by a subset of a function's AST nodes.

        Used by the core-parity-drift rule to compare the two arms of a
        dispatch ``if``: direct effect sites inside the branch plus the
        mapped transitive effects of every call the branch makes.
        ``maybe_mutates`` entries are excluded — both branches routinely
        contain *different* unresolved calls, and a maybe-vs-maybe
        mismatch would be pure noise.
        """
        ids = set(node_ids)
        info = self.program.functions[fn_id]
        out = set()
        for site in info.effect_sites:
            if site.node_id not in ids or site.kind == "maybe_mutates":
                continue
            if site.kind == "mutates":
                out.add((site.kind, site.target))
            else:
                out.add((site.kind,))
        for call in info.call_sites:
            if call.node_id not in ids:
                continue
            for effect in self.map_call(call):
                if effect[0] != "maybe_mutates":
                    out.add(effect)
        return out


def format_effect(effect: tuple) -> str:
    """Human-readable token for one effect tuple."""
    if effect[0] in ENVIRONMENT_KINDS:
        return effect[0]
    return f"{effect[0]}({effect[1]})"

"""`repro.lint`: the repo's own determinism & invariant analyzer.

The engine's correctness story rests on bit-identical determinism: the
incremental cost maintenance (``Cost = Wg*G + Wd*D + Wt*T``) is only
trustworthy if a run's layout is a pure function of its seed, and the
move-transaction fast paths are only safe if every cache and rollback
journal stays coherent with the authoritative state.  Nothing in stock
Python enforces either property, so this package does, twice over:

* **statically** — an AST-based rule engine (stdlib ``ast``, no
  third-party dependencies) that scans source for the bug classes that
  historically reintroduce nondeterminism or desync: unsorted ``set``
  iteration feeding ordering-sensitive sinks, module-level / unseeded
  randomness, float ``==``, mutable defaults, and undocumented argument
  mutation in the hot packages.  Run it with ``repro-fpga lint`` or
  ``python -m repro.lint``; suppress a finding in place with
  ``# repro-lint: disable=RULE`` (stale suppressions are themselves
  flagged).  ``--deep`` escalates to a **whole-program** pass: a
  name-resolved call graph (:mod:`repro.lint.callgraph`) with
  transitive per-function effect inference
  (:mod:`repro.lint.effects`) feeding four deep rules
  (:mod:`repro.lint.deep`) — entropy/wall-clock reachable from the
  annealer hot loop, guarded-state writes outside the journal,
  array-vs-legacy dispatch branches with diverging effects, and
  ``Mutates:`` docstrings out of sync with inferred effects — with
  ratchet semantics against the committed ``lint_baseline.json``,
  JSON/SARIF reports, and Graphviz DOT call-graph export.

* **dynamically** — :mod:`repro.lint.runtime` hosts the consolidated
  invariant checker (:func:`~repro.lint.runtime.check_all`) and the
  move-transaction sanitizer (:class:`~repro.lint.runtime.MoveSanitizer`)
  that ``AnnealerConfig(sanitize=True)`` hooks into the annealer: after
  every move it cross-checks rollback completeness, negative-cache
  coherence, and audit/verify cleanliness, raising a structured
  :class:`~repro.lint.runtime.SanitizerError` naming the offending move.

See ``docs/LINT.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from .callgraph import Program
from .deep import (
    DeepConfig,
    DeepResult,
    apply_baseline,
    load_baseline,
    render_json,
    render_sarif,
    run_deep,
)
from .effects import EffectAnalysis
from .engine import (
    Diagnostic,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_suppression_records,
    parse_suppressions,
)
from .rules import Rule, default_rules, rules_by_name

__all__ = [
    "DeepConfig",
    "DeepResult",
    "Diagnostic",
    "EffectAnalysis",
    "Program",
    "Rule",
    "apply_baseline",
    "default_rules",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "parse_suppression_records",
    "parse_suppressions",
    "render_json",
    "render_sarif",
    "rules_by_name",
    "run_deep",
]

"""Deep (whole-program) lint rules, baseline ratchet, and renderers.

The four rules here consume :class:`repro.lint.callgraph.Program` and
:class:`repro.lint.effects.EffectAnalysis` rather than a single module
AST — they answer questions no per-file rule can:

``transitive-nondeterminism``
    An entropy or wall-clock source is *reachable* from the annealer
    hot loop (:meth:`SimultaneousAnnealer.run`) through the call graph.
    The per-file ``nondeterministic-call`` rule flags the source line;
    this rule proves the source can actually contaminate a layout, and
    names the call chain.  Seeded ``random.Random`` instances and the
    monotonic telemetry clocks are whitelisted at extraction time.

``unjournaled-mutation``
    A field of :class:`RoutingState` / :class:`ArrayState` /
    :class:`IncrementalTiming` is written from outside the sanctioned
    mutation surface (the classes' own methods, the journal/transaction
    modules, and the named restore APIs).  This is the desync bug class
    the runtime sanitizer only catches dynamically, per move, with a
    failing seed in hand; here it is caught at review time.

``core-parity-drift``
    A function dispatches on the array-core flag surface
    (``array_core`` / ``arrays`` / ``reuse_cache``) and the two
    branches have *different* inferred effect sets.  The PR-6 parity
    contract says the flat-array core must be observationally identical
    to the legacy object-graph core; diverging branch effects are the
    static smell that precedes a parity break.

``effect-docstring-sync``
    The deep upgrade of ``undocumented-mutation``: instead of verb
    heuristics, the *inferred* transitive effect set is checked against
    the ``Mutates:`` docstring declaration — both directions.  A
    mutated parameter missing from the declaration is flagged, and a
    declared parameter that provably cannot be mutated is flagged as
    stale.  ``maybe_mutates`` (unresolved-call involvement) suppresses
    the stale direction only: imprecision costs recall, not precision.

Also here: the committed-baseline ratchet (`lint_baseline.json`) and
the JSON / SARIF 2.1.0 renderers the CI deep-lint job consumes.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from .callgraph import Program
from .effects import EffectAnalysis, format_effect
from .engine import Diagnostic, parse_suppressions

#: Hot-loop roots for transitive-nondeterminism (resolved by suffix, so
#: tests with other module prefixes can reuse the default).
DEFAULT_NONDET_ROOTS = ("core.annealer.SimultaneousAnnealer.run",)

#: Simple class names whose fields are guarded by unjournaled-mutation.
DEFAULT_GUARDED_CLASSES = ("RoutingState", "ArrayState", "IncrementalTiming")

#: Modules that ARE the sanctioned mutation surface: the undo journal /
#: rip-up-repair driver and the move-transaction layer exist to write
#: routing-state fields, and the runtime sanitizer audits them per move.
DEFAULT_SANCTIONED_MODULES = (
    "route.incremental",
    "core.transaction",
)

#: Qualname suffixes of individually sanctioned restore/install APIs.
DEFAULT_SANCTIONED_FUNCTIONS = (
    # The flat-array core's one-time installer; its Mutates: docstring
    # declares both writes and the parity tests pin the result.
    "ArrayState.attach",
    # Checkpoint-resume restore path: rehydrates route_version and the
    # timing cache versions wholesale from a validated payload.
    "SimultaneousAnnealer._restore",
)

#: Path fragments the docstring-sync rule is scoped to (mirrors the
#: per-file undocumented-mutation rule).
DEFAULT_SYNC_SCOPE = ("core", "route", "timing")


@dataclass
class DeepConfig:
    """Tunables for the deep rules (tests swap in synthetic values)."""

    nondet_roots: Sequence[str] = DEFAULT_NONDET_ROOTS
    guarded_classes: Sequence[str] = DEFAULT_GUARDED_CLASSES
    sanctioned_modules: Sequence[str] = DEFAULT_SANCTIONED_MODULES
    sanctioned_functions: Sequence[str] = DEFAULT_SANCTIONED_FUNCTIONS
    sync_scope: Sequence[str] = DEFAULT_SYNC_SCOPE


@dataclass
class DeepResult:
    """Everything one deep run produces."""

    program: Program
    analysis: EffectAnalysis
    diagnostics: list = field(default_factory=list)


def _short(fn_id: str) -> str:
    """Compact display name: drop the top-level package prefix."""
    parts = fn_id.split(".")
    return ".".join(parts[1:]) if len(parts) > 2 else fn_id


def _module_suffix_match(module: str, suffixes: Iterable[str]) -> bool:
    return any(
        module == suffix or module.endswith("." + suffix)
        for suffix in suffixes
    )


def _qualname_suffix_match(fn_id: str, suffixes: Iterable[str]) -> bool:
    return any(
        fn_id == suffix or fn_id.endswith("." + suffix)
        for suffix in suffixes
    )


# ----------------------------------------------------------------------
# transitive-nondeterminism
# ----------------------------------------------------------------------
def check_transitive_nondeterminism(
    program: Program,
    analysis: EffectAnalysis,
    roots: Sequence[str] = DEFAULT_NONDET_ROOTS,
) -> list:
    """Entropy/wall-clock sources reachable from the hot-loop roots."""
    resolved_roots = []
    for root in roots:
        fn_id = program._resolve_fn_ref(root)
        if fn_id is not None:
            resolved_roots.append(fn_id)
    parents = program.reachable_from(resolved_roots)
    findings = []
    for fn_id in sorted(parents):
        info = program.functions[fn_id]
        for site in info.effect_sites:
            if site.kind not in ("entropy", "wallclock"):
                continue
            chain = " -> ".join(
                _short(step) for step in program.call_chain(parents, fn_id)
            )
            what = "entropy source" if site.kind == "entropy" else \
                "wall-clock read"
            findings.append(
                Diagnostic(
                    info.path, site.lineno, site.col,
                    "transitive-nondeterminism",
                    f"{what} {site.target} is reachable from the annealer "
                    f"hot loop ({chain}); layouts must be a pure function "
                    f"of the seed — route randomness through the config-"
                    f"owned random.Random and timestamps through "
                    f"telemetry-only monotonic timers",
                    symbol=fn_id,
                )
            )
    return findings


# ----------------------------------------------------------------------
# unjournaled-mutation
# ----------------------------------------------------------------------
def check_unjournaled_mutation(
    program: Program, config: Optional[DeepConfig] = None
) -> list:
    """Guarded-class field writes outside the sanctioned surface."""
    config = config or DeepConfig()
    guarded = {
        class_id
        for name in config.guarded_classes
        for class_id in program.classes_named(name)
    }
    findings = []
    for fn_id in sorted(program.functions):
        info = program.functions[fn_id]
        if _module_suffix_match(info.module, config.sanctioned_modules):
            continue
        if _qualname_suffix_match(fn_id, config.sanctioned_functions):
            continue
        own_class = (
            f"{info.module}.{info.klass}" if info.klass is not None else None
        )
        seen = set()
        for write in info.write_sites:
            if write.class_id not in guarded:
                continue
            if write.via_self and own_class is not None and \
                    program.is_subclass(own_class, write.class_id):
                continue  # a guarded class maintaining its own fields
            key = (write.class_id, write.attr, write.lineno)
            if key in seen:
                continue
            seen.add(key)
            class_name = write.class_id.rsplit(".", 1)[-1]
            findings.append(
                Diagnostic(
                    info.path, write.lineno, write.col,
                    "unjournaled-mutation",
                    f"write to {class_name}.{write.attr} from outside the "
                    f"journaled mutation surface; route the change through "
                    f"the transaction/journal API (or a sanctioned restore) "
                    f"so rollback and the incremental caches stay coherent",
                    symbol=fn_id,
                )
            )
    return findings


# ----------------------------------------------------------------------
# core-parity-drift
# ----------------------------------------------------------------------
def check_core_parity_drift(
    program: Program, analysis: EffectAnalysis
) -> list:
    """Array-core dispatch branches with diverging effect sets."""
    findings = []
    for fn_id in sorted(program.functions):
        info = program.functions[fn_id]
        for dispatch in info.dispatch_ifs:
            array_effects = analysis.branch_effects(fn_id, dispatch.body_ids)
            legacy_effects = analysis.branch_effects(fn_id, dispatch.else_ids)
            if array_effects == legacy_effects:
                continue
            only_array = sorted(
                format_effect(e) for e in array_effects - legacy_effects
            )
            only_legacy = sorted(
                format_effect(e) for e in legacy_effects - array_effects
            )
            detail = []
            if only_array:
                detail.append(f"array-only: {{{', '.join(only_array)}}}")
            if only_legacy:
                detail.append(f"legacy-only: {{{', '.join(only_legacy)}}}")
            findings.append(
                Diagnostic(
                    info.path, dispatch.lineno, dispatch.col,
                    "core-parity-drift",
                    f"dispatch on {dispatch.flag!r}: the two core branches "
                    f"have diverging inferred effect sets "
                    f"({'; '.join(detail)}); the PR-6 parity contract "
                    f"requires the flat-array path to be observationally "
                    f"identical to the legacy path",
                    symbol=fn_id,
                )
            )
    return findings


# ----------------------------------------------------------------------
# effect-docstring-sync
# ----------------------------------------------------------------------
_BACKTICKED = re.compile(r"``([A-Za-z_][A-Za-z0-9_]*)``")


def _mutates_tokens(docstring: str) -> Optional[tuple]:
    """``(all_tokens, backticked_tokens)`` of the ``Mutates:`` paragraph.

    Returns None when the docstring has no ``Mutates:`` section.  The
    two tiers feed the two directions asymmetrically: the *missing*
    check accepts any word of the paragraph (prose like "the routing
    state" counts for a ``state`` parameter — leniency there costs
    nothing), while the *stale* check only considers names the author
    explicitly quoted as ````param```` — a prose word that happens to
    collide with a parameter name ("applies the move") must not be
    read as a declaration.
    """
    if "Mutates:" not in docstring:
        return None
    tokens: set[str] = set()
    quoted: set[str] = set()
    capturing = False
    paragraph: list[str] = []
    for line in docstring.splitlines():
        if "Mutates:" in line:
            capturing = True
        elif capturing and not line.strip():
            break
        if capturing:
            paragraph.append(line)
            word: list[str] = []
            for char in line:
                if char.isalnum() or char == "_":
                    word.append(char)
                elif word:
                    tokens.add("".join(word))
                    word = []
            if word:
                tokens.add("".join(word))
    quoted.update(_BACKTICKED.findall("\n".join(paragraph)))
    return tokens, quoted


def check_effect_docstring_sync(
    program: Program,
    analysis: EffectAnalysis,
    scope: Sequence[str] = DEFAULT_SYNC_SCOPE,
) -> list:
    """Declared ``Mutates:`` lines vs inferred transitive effects."""
    findings = []
    for fn_id in sorted(program.functions):
        info = program.functions[fn_id]
        parts = info.path.replace("\\", "/").split("/")
        if scope and not any(part in scope for part in parts):
            continue
        if info.name.startswith("_"):
            continue
        node = info.node
        docstring = ast_get_docstring(node)
        declared = _mutates_tokens(docstring)
        mutated = analysis.mutated_targets(fn_id)
        maybe = analysis.maybe_targets(fn_id)
        params = set(info.bound_params)
        mutated_params = {
            t[6:] for t in mutated if t.startswith("param:") and t[6:] in params
        }
        maybe_params = {
            t[6:] for t in maybe if t.startswith("param:") and t[6:] in params
        }
        if declared is None:
            # No Mutates: section at all.  Mutating your own instance is
            # ordinary OO (the per-file rule's stance); mutating an
            # *argument* silently is the contract violation.
            for param in sorted(mutated_params):
                findings.append(
                    _sync_missing(info, analysis, fn_id, param)
                )
            continue
        all_tokens, quoted = declared
        for param in sorted(mutated_params - all_tokens):
            findings.append(_sync_missing(info, analysis, fn_id, param))
        for param in sorted((quoted & params) - mutated_params - maybe_params):
            findings.append(
                Diagnostic(
                    info.path, info.node.lineno, info.node.col_offset,
                    "effect-docstring-sync",
                    f"docstring of {info.name!r} declares 'Mutates: ... "
                    f"{param} ...' but no write to {param!r} is inferred "
                    f"anywhere in its call tree; delete the stale "
                    f"declaration (or name the actually-mutated object)",
                    symbol=fn_id,
                )
            )
    return findings


def _sync_missing(info, analysis, fn_id, param):
    chain = analysis.provenance_chain(fn_id, ("mutates", f"param:{param}"))
    via = ""
    if len(chain) > 1:
        via = " (via " + " -> ".join(
            _short(step) for step, _ in chain[1:]
        ) + ")"
    return Diagnostic(
        info.path, info.node.lineno, info.node.col_offset,
        "effect-docstring-sync",
        f"public function {info.name!r} mutates argument {param!r}{via} "
        f"but its 'Mutates:' declaration does not name it; the rollback "
        f"machinery is only auditable when every in-place effect is "
        f"declared at the call boundary",
        symbol=fn_id,
    )


def ast_get_docstring(node) -> str:
    """Docstring of a def node ('' when absent or not a def)."""
    try:
        return ast.get_docstring(node) or ""
    except TypeError:
        return ""


#: Rule name -> one-line summary, for --list-rules and SARIF metadata.
DEEP_RULES = {
    "transitive-nondeterminism": (
        "entropy/wall-clock source reachable from the annealer hot loop"
    ),
    "unjournaled-mutation": (
        "guarded-state field write outside the transaction/journal surface"
    ),
    "core-parity-drift": (
        "array-core dispatch branches with diverging inferred effects"
    ),
    "effect-docstring-sync": (
        "'Mutates:' docstring declaration out of sync with inferred effects"
    ),
    "unused-suppression": (
        "a repro-lint suppression comment that silences nothing"
    ),
}


def run_deep(
    paths: Iterable,
    config: Optional[DeepConfig] = None,
    overrides: Optional[dict] = None,
    program: Optional[Program] = None,
) -> DeepResult:
    """Build the program, run every deep rule, honor suppressions."""
    config = config or DeepConfig()
    if program is None:
        program = Program.from_paths(paths, overrides=overrides)
    analysis = EffectAnalysis(program)
    findings: list = []
    findings.extend(
        check_transitive_nondeterminism(
            program, analysis, config.nondet_roots
        )
    )
    findings.extend(check_unjournaled_mutation(program, config))
    findings.extend(check_core_parity_drift(program, analysis))
    findings.extend(
        check_effect_docstring_sync(program, analysis, config.sync_scope)
    )
    # In-source suppression comments apply to deep findings exactly as
    # they do to per-file findings.
    survivors = []
    suppressions: dict[str, tuple] = {}
    for diagnostic in findings:
        module = next(
            (
                m for m in program.modules.values()
                if m.path == diagnostic.path
            ),
            None,
        )
        if module is None:
            survivors.append(diagnostic)
            continue
        if module.path not in suppressions:
            suppressions[module.path] = parse_suppressions(module.source)
        file_rules, by_line = suppressions[module.path]
        if "all" in file_rules or diagnostic.rule in file_rules:
            continue
        line_rules = by_line.get(diagnostic.line, set())
        if "all" in line_rules or diagnostic.rule in line_rules:
            continue
        survivors.append(diagnostic)
    survivors.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return DeepResult(program=program, analysis=analysis,
                      diagnostics=survivors)


# ----------------------------------------------------------------------
# Baseline ratchet
# ----------------------------------------------------------------------
class BaselineError(ValueError):
    """Malformed baseline file (a config error: CLI exit code 2)."""


@dataclass(frozen=True)
class Waiver:
    """One accepted finding, with a mandatory justification."""

    rule: str
    path: str
    symbol: str
    reason: str

    @property
    def key(self) -> tuple:
        return (self.rule, self.path, self.symbol)


@dataclass
class BaselineResult:
    """Ratchet outcome: what is new, what is waived, what went stale."""

    new: list = field(default_factory=list)  # unwaived Diagnostics
    waived: list = field(default_factory=list)  # waived Diagnostics
    stale: list = field(default_factory=list)  # Waivers matching nothing

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale


def load_baseline(path) -> list:
    """Parse ``lint_baseline.json``; raises :class:`BaselineError`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict) or "waivers" not in payload:
        raise BaselineError(
            f"baseline {path} must be an object with a 'waivers' list"
        )
    waivers = []
    for index, entry in enumerate(payload["waivers"]):
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline waiver #{index} is not an object")
        missing = [
            key for key in ("rule", "path", "symbol", "reason")
            if not entry.get(key)
        ]
        if missing:
            raise BaselineError(
                f"baseline waiver #{index} is missing {', '.join(missing)} "
                f"(every waiver needs a one-line justification)"
            )
        waivers.append(
            Waiver(
                rule=entry["rule"],
                path=entry["path"].replace("\\", "/"),
                symbol=entry["symbol"],
                reason=entry["reason"],
            )
        )
    return waivers


def apply_baseline(diagnostics: Iterable, waivers: Iterable) -> BaselineResult:
    """Ratchet semantics: new findings fail, stale waivers fail too."""
    result = BaselineResult()
    by_key: dict[tuple, list] = {}
    for waiver in waivers:
        by_key.setdefault(waiver.key, []).append(waiver)
    matched: set[tuple] = set()
    for diagnostic in diagnostics:
        key = (
            diagnostic.rule,
            diagnostic.path.replace("\\", "/"),
            diagnostic.symbol,
        )
        if key in by_key:
            matched.add(key)
            result.waived.append(diagnostic)
        else:
            result.new.append(diagnostic)
    for key in sorted(by_key):
        if key not in matched:
            result.stale.extend(by_key[key])
    return result


# ----------------------------------------------------------------------
# Renderers
# ----------------------------------------------------------------------
def render_json(
    diagnostics: Iterable, program: Optional[Program] = None
) -> str:
    """Machine-readable report (stable key order, trailing newline)."""
    findings = []
    by_rule: dict[str, int] = {}
    for diagnostic in diagnostics:
        findings.append(
            {
                "path": diagnostic.path,
                "line": diagnostic.line,
                "col": diagnostic.col,
                "rule": diagnostic.rule,
                "message": diagnostic.message,
                "symbol": diagnostic.symbol,
            }
        )
        by_rule[diagnostic.rule] = by_rule.get(diagnostic.rule, 0) + 1
    payload = {
        "version": 1,
        "findings": findings,
        "summary": {
            "total": len(findings),
            "by_rule": dict(sorted(by_rule.items())),
        },
    }
    if program is not None:
        payload["resolution"] = {
            "call_sites": program.total_calls,
            "unresolved": program.unresolved_calls,
            "rate": round(program.resolution_rate(), 4),
        }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"


def render_sarif(diagnostics: Iterable) -> str:
    """SARIF 2.1.0 report (what the CI deep-lint job uploads)."""
    diagnostics = list(diagnostics)
    rule_ids = sorted({d.rule for d in diagnostics} | set(DEEP_RULES))
    rules = [
        {
            "id": rule_id,
            "shortDescription": {
                "text": DEEP_RULES.get(rule_id, rule_id)
            },
        }
        for rule_id in rule_ids
    ]
    results = [
        {
            "ruleId": d.rule,
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/")
                        },
                        "region": {
                            "startLine": d.line,
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    payload = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/LINT.md",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"

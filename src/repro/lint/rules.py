"""The rule set: the engine's real, historically-observed failure modes.

Every rule here exists because the corresponding bug class breaks the
annealer's bit-identical determinism contract or desyncs the
incremental caches that move transactions depend on:

``set-iteration``
    Iterating a ``set`` (or anything inferred to be one) into an
    ordering-sensitive sink — a ``for`` loop, an ordered comprehension,
    ``list``/``tuple``/``enumerate``/``iter``, or ``min``/``max`` with
    a ``key=`` (ties resolve by encounter order) — makes behavior a
    function of hash-table insertion *history*, not contents.  Wrap the
    iterable in ``sorted(...)``.  Order-insensitive uses (``len``,
    membership, ``any``/``all``, set algebra, building another set) are
    allowed.

``nondeterministic-call``
    Module-level ``random.*`` functions share one hidden global RNG;
    wall-clock reads (``time.time``, ``datetime.now``), ``os.urandom``,
    ``uuid.uuid1/4`` and ``secrets`` smuggle entropy into layouts.
    All randomness must flow through an explicitly seeded
    ``random.Random`` owned by ``AnnealerConfig``.  Monotonic timers
    (``perf_counter`` etc.) are allowed: they feed telemetry only.

``float-equality``
    ``==``/``!=`` on cost/delay floats silently turns epsilon drift
    into control-flow divergence.  Compare with a tolerance, or
    restructure to ``<=``/``>=``.

``mutable-default``
    A mutable default argument (or bare mutable dataclass field
    default) is shared across calls/instances — state leaks between
    supposedly independent runs.

``undocumented-mutation``
    In ``core/``, ``route/``, and ``timing/`` a public function that
    mutates one of its arguments must say so with a ``Mutates:`` line
    in its docstring.  The rollback machinery is only auditable if
    every in-place effect is declared at the call boundary.

``no-print-in-library``
    Library code must not ``print()``: bare writes to stdout interleave
    with machine-readable output, cannot be captured or silenced by
    harnesses, and hide run data that belongs in the structured trace.
    Emit a :mod:`repro.obs` trace event (for run data) or go through
    :class:`repro.obs.console.Console` (for human notices).  CLI
    modules (``cli.py``, ``__main__.py``) are exempt — stdout is their
    job.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Sequence

from .engine import Diagnostic

# Inferred "kinds" the shared type tracker distinguishes.
SET = "set"
SET_CONTAINER = "set-container"  # list/dict/... holding sets
FLOAT = "float"

_SET_TYPE_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)
_SEQ_TYPE_NAMES = frozenset(
    {
        "list", "List", "tuple", "Tuple", "Sequence", "MutableSequence",
        "Iterable", "Iterator", "Collection",
    }
)
_MAP_TYPE_NAMES = frozenset(
    {
        "dict", "Dict", "Mapping", "MutableMapping", "DefaultDict",
        "defaultdict", "OrderedDict",
    }
)


def _annotation_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_kind(node: Optional[ast.expr]) -> Optional[str]:
    """Kind implied by a type annotation, if recognizable."""
    if node is None:
        return None
    name = _annotation_name(node)
    if name in _SET_TYPE_NAMES:
        return SET
    if name == "float":
        return FLOAT
    if isinstance(node, ast.Subscript):
        base = _annotation_name(node.value)
        inner = node.slice
        parts: Sequence[ast.expr]
        if isinstance(inner, ast.Tuple):
            parts = inner.elts
        else:
            parts = (inner,)
        if base in _SET_TYPE_NAMES:
            return SET
        if base == "Optional" and parts:
            return _annotation_kind(parts[0])
        if base in _SEQ_TYPE_NAMES and parts:
            if _annotation_kind(parts[0]) == SET:
                return SET_CONTAINER
        if base in _MAP_TYPE_NAMES and parts:
            if _annotation_kind(parts[-1]) == SET:
                return SET_CONTAINER
    return None


class TypeMap:
    """Best-effort, scope-aware kind inference over one module.

    Tracks three sources of truth: explicit annotations (variables,
    parameters, ``self.attr``), direct construction (``x = set()``,
    ``x = {a, b}``, set comprehensions), and one level of container
    indexing (``xs[i]`` where ``xs: list[set[int]]``).  Anything it
    cannot prove stays unknown — rules only fire on proven kinds, so
    imprecision costs recall, never precision.
    """

    def __init__(self, tree: ast.Module) -> None:
        # Scope key is id(scope node); module scope key is id(tree).
        self._vars: dict[int, dict[str, str]] = {}
        self._attrs: dict[int, dict[str, str]] = {}
        self._parents: dict[int, int] = {}
        self._collect(tree, scope=tree, klass=None)

    # -- collection ----------------------------------------------------
    def _scope_vars(self, scope: ast.AST) -> dict[str, str]:
        return self._vars.setdefault(id(scope), {})

    def _class_attrs(self, klass: ast.AST) -> dict[str, str]:
        return self._attrs.setdefault(id(klass), {})

    def _record(self, scope: ast.AST, name: str, kind: Optional[str]) -> None:
        if kind is not None:
            self._scope_vars(scope)[name] = kind

    def _collect(
        self,
        node: ast.AST,
        scope: ast.AST,
        klass: Optional[ast.AST],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._parents[id(child)] = id(scope)
                args = child.args
                for arg in (
                    list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)
                ):
                    self._record(child, arg.arg, _annotation_kind(arg.annotation))
                self._collect(child, scope=child, klass=klass)
            elif isinstance(child, ast.ClassDef):
                self._parents[id(child)] = id(scope)
                self._collect(child, scope=child, klass=child)
            elif isinstance(child, ast.AnnAssign):
                kind = _annotation_kind(child.annotation)
                target = child.target
                if isinstance(target, ast.Name):
                    self._record(scope, target.id, kind)
                    if klass is not None and scope is klass:
                        # Class-level annotation doubles as an
                        # instance-attribute declaration (dataclasses).
                        if kind is not None:
                            self._class_attrs(klass)[target.id] = kind
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and klass is not None
                    and kind is not None
                ):
                    self._class_attrs(klass)[target.attr] = kind
                self._collect(child, scope=scope, klass=klass)
            elif isinstance(child, ast.Assign) and len(child.targets) == 1:
                kind = self.kind_of(child.value, scope, klass)
                target = child.targets[0]
                if isinstance(target, ast.Name):
                    self._record(scope, target.id, kind)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and klass is not None
                    and kind is not None
                ):
                    self._class_attrs(klass)[target.attr] = kind
                self._collect(child, scope=scope, klass=klass)
            else:
                self._collect(child, scope=scope, klass=klass)

    # -- queries -------------------------------------------------------
    def _lookup_var(self, name: str, scope: ast.AST) -> Optional[str]:
        key: Optional[int] = id(scope)
        while key is not None:
            kinds = self._vars.get(key)
            if kinds is not None and name in kinds:
                return kinds[name]
            key = self._parents.get(key)
        return None

    def kind_of(
        self,
        node: ast.expr,
        scope: ast.AST,
        klass: Optional[ast.AST],
    ) -> Optional[str]:
        """Inferred kind of an expression, or None if unknown."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return SET
        if isinstance(node, ast.Constant):
            return FLOAT if isinstance(node.value, float) else None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in ("set", "frozenset"):
                    return SET
                if func.id == "float":
                    return FLOAT
            return None
        if isinstance(node, ast.Name):
            return self._lookup_var(node.id, scope)
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and klass is not None
            ):
                return self._attrs.get(id(klass), {}).get(node.attr)
            return None
        if isinstance(node, ast.Subscript):
            base_kind = self.kind_of(node.value, scope, klass)
            if base_kind == SET_CONTAINER:
                return SET
            return None
        if isinstance(node, ast.BinOp):
            left = self.kind_of(node.left, scope, klass)
            right = self.kind_of(node.right, scope, klass)
            if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                if SET in (left, right):
                    return SET
            if isinstance(node.op, ast.Div):
                return FLOAT
            if FLOAT in (left, right) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult, ast.Pow, ast.Mod)
            ):
                return FLOAT
            return None
        if isinstance(node, ast.UnaryOp):
            return self.kind_of(node.operand, scope, klass)
        if isinstance(node, ast.IfExp):
            body = self.kind_of(node.body, scope, klass)
            orelse = self.kind_of(node.orelse, scope, klass)
            return body if body == orelse else None
        return None


class _ScopedVisitor(ast.NodeVisitor):
    """NodeVisitor that tracks the enclosing scope and class."""

    def __init__(self, types: TypeMap, path: str) -> None:
        self.types = types
        self.path = path
        self.findings: list[Diagnostic] = []
        self._scope_stack: list[ast.AST] = []
        self._class_stack: list[Optional[ast.AST]] = [None]

    @property
    def scope(self) -> ast.AST:
        return self._scope_stack[-1]

    @property
    def klass(self) -> Optional[ast.AST]:
        return self._class_stack[-1]

    def kind_of(self, node: ast.expr) -> Optional[str]:
        return self.types.kind_of(node, self.scope, self.klass)

    def run(self, tree: ast.Module) -> list[Diagnostic]:
        self._scope_stack = [tree]
        self.visit(tree)
        return self.findings

    def report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Diagnostic(self.path, node.lineno, node.col_offset, rule, message)
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope_stack.append(node)
        self.generic_visit(node)
        self._scope_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.visit_FunctionDef(node)  # type: ignore[arg-type]

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope_stack.append(node)
        self._class_stack.append(node)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope_stack.pop()


class Rule:
    """One named check over a parsed module."""

    name: str = ""
    summary: str = ""

    def check(
        self, tree: ast.Module, source: str, path: str
    ) -> Iterator[Diagnostic]:
        """Yield diagnostics for one module."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# set-iteration
# ----------------------------------------------------------------------
class _SetIterationVisitor(_ScopedVisitor):
    _ORDERED_CALLS = frozenset({"list", "tuple", "enumerate", "iter", "reversed"})

    def _flag(self, expr: ast.expr, sink: str) -> None:
        if self.kind_of(expr) == SET:
            self.report(
                expr,
                SetIterationRule.name,
                f"iteration over a set reaches an ordering-sensitive sink "
                f"({sink}); wrap it in sorted(...) so behavior depends on "
                f"contents, not hash-insertion history",
            )

    def visit_For(self, node: ast.For) -> None:
        self._flag(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST, sink: str) -> None:
        for generator in node.generators:  # type: ignore[attr-defined]
            self._flag(generator.iter, sink)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension(node, "list comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension(node, "generator expression")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comprehension(node, "dict comprehension")

    # Set comprehensions are allowed: an unordered source feeding an
    # unordered result cannot leak iteration order.

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and node.args:
            if func.id in self._ORDERED_CALLS:
                self._flag(node.args[0], f"{func.id}()")
            elif func.id in ("min", "max") and any(
                keyword.arg == "key" for keyword in node.keywords
            ):
                # Plain min/max over a total order is order-independent;
                # a key function resolves ties by encounter order.
                self._flag(node.args[0], f"{func.id}(key=...)")
        self.generic_visit(node)


class SetIterationRule(Rule):
    name = "set-iteration"
    summary = (
        "set iterated into an ordering-sensitive sink without sorted(...)"
    )

    def check(self, tree, source, path):
        yield from _SetIterationVisitor(TypeMap(tree), path).run(tree)


# ----------------------------------------------------------------------
# nondeterministic-call
# ----------------------------------------------------------------------
#: module -> names whose call is nondeterministic; None = every name.
#: ``random``: every lowercase attribute is a convenience wrapper around
#: the hidden module-global RNG (the class constructors Random /
#: SystemRandom are the *approved* escape hatch, so they are exempt).
_NONDET_TIME = frozenset({"time", "time_ns", "localtime", "ctime", "gmtime"})
_NONDET_OS = frozenset({"urandom", "getrandom"})
_NONDET_UUID = frozenset({"uuid1", "uuid4"})
_NONDET_DATETIME = frozenset({"now", "utcnow", "today"})


class _NondetCallVisitor(_ScopedVisitor):
    def __init__(self, types: TypeMap, path: str) -> None:
        super().__init__(types, path)
        # local alias -> canonical module name, for `import x as y`.
        self._module_alias: dict[str, str] = {}

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name in ("random", "time", "os", "uuid", "secrets",
                              "datetime"):
                self._module_alias[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        flagged = {
            "random": None,  # any function import from random
            "time": _NONDET_TIME,
            "os": _NONDET_OS,
            "uuid": _NONDET_UUID,
            "secrets": None,
        }
        names = flagged.get(node.module or "", frozenset())
        for alias in node.names:
            bad = names is None and alias.name[:1].islower() or (
                names is not None and alias.name in names
            )
            if bad:
                self.report(
                    node,
                    NondeterministicCallRule.name,
                    f"importing {alias.name!r} from {node.module!r} pulls in "
                    f"hidden nondeterministic state; route randomness through "
                    f"an explicitly seeded random.Random and timestamps "
                    f"through telemetry-only monotonic timers",
                )
        self.generic_visit(node)

    def _module_of(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Name):
            return self._module_alias.get(node.id)
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self._module_of(func.value)
            attr = func.attr
            bad = False
            if module == "random" and attr[:1].islower():
                bad = True
            elif module == "time" and attr in _NONDET_TIME:
                bad = True
            elif module == "os" and attr in _NONDET_OS:
                bad = True
            elif module == "uuid" and attr in _NONDET_UUID:
                bad = True
            elif module == "secrets":
                bad = True
            elif attr in _NONDET_DATETIME:
                # datetime.datetime.now() / datetime.date.today() chains.
                inner = func.value
                if isinstance(inner, ast.Attribute) and self._module_of(
                    inner.value
                ) == "datetime":
                    bad = True
                elif self._module_of(inner) == "datetime":
                    bad = True
            if bad:
                self.report(
                    node,
                    NondeterministicCallRule.name,
                    f"call to {module or 'datetime'}.{attr} injects hidden "
                    f"global or wall-clock state; layouts must be a pure "
                    f"function of the seed (use an AnnealerConfig-owned "
                    f"random.Random; monotonic timers are fine for telemetry)",
                )
        self.generic_visit(node)


class NondeterministicCallRule(Rule):
    name = "nondeterministic-call"
    summary = (
        "module-level random.* / wall-clock / entropy call outside "
        "seeded, config-owned RNGs"
    )

    def check(self, tree, source, path):
        yield from _NondetCallVisitor(TypeMap(tree), path).run(tree)


# ----------------------------------------------------------------------
# float-equality
# ----------------------------------------------------------------------
class _FloatEqualityVisitor(_ScopedVisitor):
    def _is_floatish(self, node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        return self.kind_of(node) == FLOAT

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for index, op in enumerate(node.ops):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            left, right = operands[index], operands[index + 1]
            if self._is_floatish(left) or self._is_floatish(right):
                self.report(
                    node,
                    FloatEqualityRule.name,
                    "exact ==/!= on float values turns epsilon drift into "
                    "control-flow divergence; compare with a tolerance "
                    "(math.isclose / abs(a - b) <= eps) or use <=/>=",
                )
                break
        self.generic_visit(node)


class FloatEqualityRule(Rule):
    name = "float-equality"
    summary = "exact ==/!= comparison on float (cost/delay) values"

    def check(self, tree, source, path):
        yield from _FloatEqualityVisitor(TypeMap(tree), path).run(tree)


# ----------------------------------------------------------------------
# mutable-default
# ----------------------------------------------------------------------
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "OrderedDict", "Counter"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = _annotation_name(node.func)
        return name in _MUTABLE_FACTORIES
    return False


def _decorator_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Call):
        node = node.func
    return _annotation_name(node)


class _MutableDefaultVisitor(_ScopedVisitor):
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in list(args.defaults) + list(args.kw_defaults):
            if default is not None and _is_mutable_default(default):
                self.report(
                    default,
                    MutableDefaultRule.name,
                    "mutable default argument is shared across every call; "
                    "default to None (or use a factory inside the body)",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        super().visit_FunctionDef(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_decorator_name(dec) == "dataclass" for dec in node.decorator_list):
            for statement in node.body:
                if (
                    isinstance(statement, ast.AnnAssign)
                    and statement.value is not None
                    and _is_mutable_default(statement.value)
                ):
                    self.report(
                        statement.value,
                        MutableDefaultRule.name,
                        "mutable dataclass field default is shared across "
                        "instances; use field(default_factory=...)",
                    )
        super().visit_ClassDef(node)


class MutableDefaultRule(Rule):
    name = "mutable-default"
    summary = "mutable default argument or bare mutable dataclass field"

    def check(self, tree, source, path):
        yield from _MutableDefaultVisitor(TypeMap(tree), path).run(tree)


# ----------------------------------------------------------------------
# undocumented-mutation
# ----------------------------------------------------------------------
#: Method names treated as in-place mutators when invoked on (an
#: attribute chain of) a parameter.  The first group is the stdlib
#: container vocabulary; the second is this repo's own mutation
#: vocabulary (RoutingState / Placement / journal verbs), included so
#: the rule sees through the domain API instead of only raw containers.
DEFAULT_MUTATORS = frozenset(
    {
        # stdlib containers
        "add", "append", "extend", "insert", "update", "discard", "remove",
        "pop", "popitem", "clear", "setdefault", "sort", "reverse",
        # repro domain verbs
        "rip_up", "rip_up_nets", "refresh_nets", "refresh_geometry",
        "commit_vertical", "commit_detail", "discard_detail_pending",
        "note_detail_failure", "note_global_failure", "claim", "release",
        "reclaim", "restore", "restore_all", "snapshot", "apply", "undo",
        "swap_slots", "set_pinmap", "place", "unplace", "set_focus",
        "set_window", "record", "recalibrate",
    }
)

#: Path fragments the default rule instance is scoped to.
DEFAULT_MUTATION_SCOPE = ("core", "route", "timing")


def _root_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _MutationFinder(ast.NodeVisitor):
    """Collects which parameter names a function body mutates."""

    def __init__(self, params: frozenset[str], mutators: frozenset[str]) -> None:
        self.params = params
        self.mutators = mutators
        self.mutated: set[str] = set()

    def _check_target(self, target: ast.expr) -> None:
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root in self.params:
                self.mutated.add(root)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in self.mutators:
            root = _root_name(func.value)
            if root in self.params:
                self.mutated.add(root)
        self.generic_visit(node)


class UndocumentedMutationRule(Rule):
    name = "undocumented-mutation"
    summary = (
        "public function mutates an argument without a 'Mutates:' "
        "docstring marker (core/, route/, timing/)"
    )

    def __init__(
        self,
        scope_dirs: Sequence[str] = DEFAULT_MUTATION_SCOPE,
        mutators: frozenset[str] = DEFAULT_MUTATORS,
    ) -> None:
        self.scope_dirs = tuple(scope_dirs)
        self.mutators = mutators

    def _in_scope(self, path: str) -> bool:
        if not self.scope_dirs:
            return True
        parts = path.replace("\\", "/").split("/")
        return any(part in self.scope_dirs for part in parts)

    def _check_function(
        self, node, is_method: bool
    ) -> Iterator[tuple[ast.AST, str]]:
        if node.name.startswith("_"):
            return
        args = node.args
        names = [
            arg.arg
            for arg in list(args.posonlyargs) + list(args.args)
            + list(args.kwonlyargs)
        ]
        if args.vararg is not None:
            names.append(args.vararg.arg)
        if args.kwarg is not None:
            names.append(args.kwarg.arg)
        if is_method and names and names[0] in ("self", "cls"):
            # Mutating your own instance is ordinary OO; the contract
            # the rule enforces is about *other people's* objects.
            names = names[1:]
        params = frozenset(names)
        if not params:
            return
        finder = _MutationFinder(params, self.mutators)
        for statement in node.body:
            finder.visit(statement)
        if not finder.mutated:
            return
        docstring = ast.get_docstring(node) or ""
        if "Mutates:" not in docstring:
            mutated = ", ".join(sorted(finder.mutated))
            yield node, (
                f"public function {node.name!r} mutates argument(s) "
                f"{mutated} but its docstring has no 'Mutates:' marker "
                f"declaring the in-place effect"
            )

    def check(self, tree, source, path):
        if not self._in_scope(path):
            return
        # Walk top-level functions and class methods (not nested defs:
        # closures are implementation detail, not API surface).
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for where, message in self._check_function(node, False):
                    yield Diagnostic(
                        path, where.lineno, where.col_offset, self.name, message
                    )
            elif isinstance(node, ast.ClassDef):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        for where, message in self._check_function(item, True):
                            yield Diagnostic(
                                path, where.lineno, where.col_offset,
                                self.name, message,
                            )


# ----------------------------------------------------------------------
# no-print-in-library
# ----------------------------------------------------------------------
class NoPrintInLibraryRule(Rule):
    name = "no-print-in-library"
    summary = (
        "print() in library code (emit a trace event or use "
        "repro.obs.console; CLI modules exempt)"
    )

    #: Module basenames whose whole job is terminal output.
    EXEMPT_BASENAMES = frozenset({"cli.py", "__main__.py"})

    def check(self, tree, source, path):
        basename = path.replace("\\", "/").rsplit("/", 1)[-1]
        if basename in self.EXEMPT_BASENAMES:
            return
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield Diagnostic(
                    path, node.lineno, node.col_offset, self.name,
                    "print() in library code writes uncapturable text "
                    "straight to stdout; emit a repro.obs trace event for "
                    "run data, or route human notices through "
                    "repro.obs.console.Console",
                )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def default_rules() -> tuple[Rule, ...]:
    """Fresh instances of every shipped rule."""
    return (
        SetIterationRule(),
        NondeterministicCallRule(),
        FloatEqualityRule(),
        MutableDefaultRule(),
        UndocumentedMutationRule(),
        NoPrintInLibraryRule(),
    )


def rules_by_name() -> dict[str, Rule]:
    """Name -> rule instance for CLI rule selection."""
    return {rule.name: rule for rule in default_rules()}

"""Whole-program import graph and name-resolved call graph.

The per-file rules in :mod:`repro.lint.rules` see one module at a time,
which is exactly the wrong granularity for the bug classes that now
threaten the engine: the two move cores must mutate shared state in
lockstep, and the planned speculative-parallel moves are only safe once
"what state does this call tree touch?" has a static answer.  This
module provides the substrate for those answers:

* :class:`Program` — parse every module under a package root once,
  collect imports, classes (with attribute-type heuristics), and
  functions, then resolve every call site to a concrete target where
  the types allow it;
* :class:`CallSite` — one resolved (or classified-unresolvable) call,
  carrying the *origin* of its receiver and arguments so the effect
  analysis (:mod:`repro.lint.effects`) can map callee effects onto
  caller state;
* :func:`Program.to_dot` — Graphviz export of the call graph (or a
  reachable subtree) for docs and debugging.

Resolution is deliberately best-effort and sound-for-rules: anything
the heuristics cannot prove is classified ``unresolved`` and the deep
rules treat it as effect-free-but-suspicious (imprecision costs recall,
never precision).  The resolution *rate* over ``src/repro`` is pinned
by a test — the analyzer is only trustworthy while it actually sees
the engine's call tree.

Type heuristics, in priority order: parameter / variable / dataclass
annotations (including quoted forward references and ``Optional[...]``
unwrapping), ``self.attr = <constructible>`` assignments, constructor
calls, internal-method return annotations, and one level of container
element types (``list[NetRoute]`` subscripts, iteration targets).
"""

from __future__ import annotations

import ast
import builtins
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

# ----------------------------------------------------------------------
# Origins: where a value a function manipulates ultimately comes from.
# Mutating a value only matters to callers when its origin escapes the
# function — a parameter, ``self``, or a module-level global.
# ----------------------------------------------------------------------
ORIGIN_SELF = ("self",)
ORIGIN_NEW = ("new",)
ORIGIN_UNKNOWN = ("unknown",)
ORIGIN_GLOBAL = ("global",)


def origin_param(name: str) -> tuple:
    """Origin token for a caller-visible parameter."""
    return ("param", name)


#: Builtin container / scalar "types" the lightweight inference tracks.
BUILTIN_KINDS = frozenset(
    {"str", "list", "dict", "set", "frozenset", "tuple", "int", "float",
     "bool", "bytes", "bytearray", "object", "type", "complex"}
)

#: Annotation names that imply a list-like container (element type kept).
_SEQ_ANNOTATIONS = frozenset(
    {"list", "List", "tuple", "Tuple", "Sequence", "MutableSequence",
     "Iterable", "Iterator", "Collection", "frozenset", "set", "Set",
     "FrozenSet"}
)
_MAP_ANNOTATIONS = frozenset(
    {"dict", "Dict", "Mapping", "MutableMapping", "DefaultDict",
     "defaultdict", "OrderedDict"}
)

_BUILTIN_NAMES = frozenset(dir(builtins))


@dataclass
class FunctionInfo:
    """One module-level function or class method."""

    module: str
    qualname: str  # "func" or "Class.method"
    node: ast.AST
    path: str
    klass: Optional[str] = None  # enclosing class simple name
    is_method: bool = False
    is_classmethod: bool = False
    is_staticmethod: bool = False
    params: list = field(default_factory=list)  # names, in order
    param_types: dict = field(default_factory=dict)  # name -> type id
    return_type: Optional[str] = None
    # Filled by the scanning pass:
    call_sites: list = field(default_factory=list)
    effect_sites: list = field(default_factory=list)  # EffectSite records
    write_sites: list = field(default_factory=list)  # WriteSite records
    dispatch_ifs: list = field(default_factory=list)  # DispatchIf records

    @property
    def id(self) -> str:
        """Globally unique id: ``module.qualname``."""
        return f"{self.module}.{self.qualname}"

    @property
    def name(self) -> str:
        """Bare function/method name."""
        return self.qualname.rsplit(".", 1)[-1]

    @property
    def bound_params(self) -> list:
        """Parameters a caller binds (``self``/``cls`` stripped)."""
        if self.is_method and not self.is_staticmethod and self.params:
            return self.params[1:]
        return self.params


@dataclass
class ClassInfo:
    """One class: methods, attribute types, resolved bases."""

    module: str
    name: str
    node: ast.ClassDef
    path: str
    bases: list = field(default_factory=list)  # resolved class ids
    methods: dict = field(default_factory=dict)  # name -> function id
    attr_types: dict = field(default_factory=dict)  # attr -> type id
    #: True when a base class lives outside the program (stdlib /
    #: third-party): a method lookup miss then means "inherited".
    external_bases: bool = False

    @property
    def id(self) -> str:
        return f"{self.module}.{self.name}"


@dataclass
class CallSite:
    """One call expression, resolved as far as the heuristics allow.

    ``kind`` is one of ``internal`` (edge to a program function),
    ``class`` (constructor of a program class), ``builtin``,
    ``external`` (stdlib / third-party), ``local`` (nested def or
    callable alias of one), or ``unresolved``.
    """

    caller: str
    node_id: int
    lineno: int
    col: int
    kind: str
    target: str  # display name; function id when kind == "internal"
    callee: Optional[str] = None  # function id for internal edges
    receiver_origin: Optional[tuple] = None
    #: callee parameter name -> argument origin, for effect mapping.
    arg_origins: dict = field(default_factory=dict)
    #: origins of arguments we could not bind to a parameter.
    loose_origins: list = field(default_factory=list)


@dataclass
class EffectSite:
    """One syntactic effect source inside a function body."""

    node_id: int
    kind: str  # "mutates" | "entropy" | "wallclock" | "filesystem" | "stdout"
    target: str  # mutation target token, or source description
    lineno: int
    col: int


@dataclass
class WriteSite:
    """A direct field write (store / del / container mutator) through an
    expression whose static type is a program class."""

    node_id: int
    class_id: str
    attr: str
    via_self: bool  # base chain is rooted at the enclosing instance
    lineno: int
    col: int


@dataclass
class DispatchIf:
    """An ``if`` whose test dispatches on an array-core style flag."""

    node_id: int
    lineno: int
    col: int
    flag: str
    body_ids: frozenset  # ids of ast nodes in the taken branch
    else_ids: frozenset  # ids of ast nodes in the other branch
    has_else: bool


class ModuleInfo:
    """Parsed module plus its symbol tables."""

    def __init__(self, name: str, path: str, source: str) -> None:
        self.name = name
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.imports: dict[str, str] = {}  # local alias -> dotted target
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}

    def package(self, level: int = 1) -> str:
        """Enclosing package name, ``level`` steps up (for relative imports)."""
        parts = self.name.split(".")
        return ".".join(parts[:-level]) if len(parts) >= level else ""


def module_name_for(path: Path) -> str:
    """Dotted module name inferred from package ``__init__.py`` nesting."""
    path = Path(path)
    parts = [path.stem] if path.name != "__init__.py" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _annotation_type(node: Optional[ast.expr], resolve) -> Optional[str]:
    """Type id implied by an annotation node.

    ``resolve`` maps a raw dotted name to a type id (class id, external
    dotted name, or builtin kind).  Returns e.g. ``"pkg.mod.Class"``,
    ``"list[pkg.mod.Class]"``, ``"dict[*,pkg.mod.Class]"`` or None.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # Quoted forward reference: parse the string as an expression.
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, (ast.Name, ast.Attribute)):
        dotted = _dotted_name(node)
        return resolve(dotted) if dotted else None
    if isinstance(node, ast.Subscript):
        base = _dotted_name(node.value)
        if base is None:
            return None
        simple = base.rsplit(".", 1)[-1]
        inner = node.slice
        parts = list(inner.elts) if isinstance(inner, ast.Tuple) else [inner]
        if simple == "Optional" and parts:
            return _annotation_type(parts[0], resolve)
        if simple == "Union":
            kinds = {_annotation_type(p, resolve) for p in parts}
            kinds.discard(None)
            return kinds.pop() if len(kinds) == 1 else None
        if simple in _SEQ_ANNOTATIONS and parts:
            elem = _annotation_type(parts[0], resolve)
            return f"list[{elem}]" if elem else "list"
        if simple in _MAP_ANNOTATIONS and parts:
            value = _annotation_type(parts[-1], resolve)
            return f"dict[*,{value}]" if value else "dict"
        resolved = resolve(base)
        return resolved
    return None


def _dotted_name(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chain as a dotted string, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _decorator_names(node) -> set[str]:
    names = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        dotted = _dotted_name(target)
        if dotted:
            names.add(dotted.rsplit(".", 1)[-1])
    return names


def element_type(container: Optional[str]) -> Optional[str]:
    """Element (or mapping value) type of a container type id."""
    if container is None:
        return None
    if container.startswith("list[") and container.endswith("]"):
        return container[5:-1]
    if container.startswith("dict[*,") and container.endswith("]"):
        return container[7:-1]
    return None


class Program:
    """All modules under one (or more) package roots, cross-resolved."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        self._class_by_simple: dict[str, list[str]] = {}
        self.parse_errors: list[tuple[str, str]] = []
        # Resolution statistics, filled by the scanning pass.
        self.total_calls = 0
        self.unresolved_calls = 0
        self.unresolved_samples: list[tuple[str, int, str]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_paths(
        cls,
        paths: Iterable,
        overrides: Optional[dict] = None,
    ) -> "Program":
        """Build from files/directories.

        ``overrides`` maps a path suffix (or exact module name) to
        replacement source text — the test hook that injects synthetic
        violations without touching the tree on disk.
        """
        from .engine import iter_python_files

        program = cls()
        overrides = overrides or {}
        for file_path in iter_python_files([Path(p) for p in paths]):
            name = module_name_for(file_path)
            key = str(file_path).replace("\\", "/")
            source = None
            for pattern, text in overrides.items():
                if key.endswith(str(pattern)) or pattern == name:
                    source = text
                    break
            if source is None:
                source = Path(file_path).read_text(encoding="utf-8")
            program._add_module(name, key, source)
        program._finish()
        return program

    @classmethod
    def from_sources(cls, sources: dict) -> "Program":
        """Build from an in-memory ``{module_name: source}`` mapping."""
        program = cls()
        for name in sorted(sources):
            path = name.replace(".", "/") + ".py"
            program._add_module(name, path, sources[name])
        program._finish()
        return program

    def _add_module(self, name: str, path: str, source: str) -> None:
        try:
            module = ModuleInfo(name, path, source)
        except SyntaxError as exc:
            self.parse_errors.append((path, str(exc)))
            return
        self.modules[name] = module

    def _finish(self) -> None:
        for module in self.modules.values():
            self._collect_imports(module)
            self._collect_defs(module)
        for class_info in self.classes.values():
            self._class_by_simple.setdefault(class_info.name, []).append(
                class_info.id
            )
        for module in self.modules.values():
            self._collect_annotations(module)
        for module in self.modules.values():
            self._collect_attr_assignments(module)
        for module in self.modules.values():
            self._resolve_bases(module)
        scanner_cls = _FunctionScanner  # late import cycle avoidance
        for module_name in sorted(self.modules):
            module = self.modules[module_name]
            for qualname in sorted(module.functions):
                scanner_cls(self, module, module.functions[qualname]).scan()

    # -- symbol collection ---------------------------------------------
    def _collect_imports(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = module.package(node.level)
                    target_mod = (
                        f"{base}.{node.module}" if node.module else base
                    )
                else:
                    target_mod = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    module.imports[local] = f"{target_mod}.{alias.name}"

    def _register_function(
        self, module: ModuleInfo, node, klass: Optional[ClassInfo]
    ) -> None:
        qualname = f"{klass.name}.{node.name}" if klass else node.name
        decorators = _decorator_names(node)
        info = FunctionInfo(
            module=module.name,
            qualname=qualname,
            node=node,
            path=module.path,
            klass=klass.name if klass else None,
            is_method=klass is not None,
            is_classmethod="classmethod" in decorators,
            is_staticmethod="staticmethod" in decorators,
        )
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            info.params.append(arg.arg)
        module.functions[qualname] = info
        self.functions[info.id] = info
        if klass is not None:
            klass.methods.setdefault(node.name, info.id)

    def _collect_defs(self, module: ModuleInfo) -> None:
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._register_function(module, node, None)
            elif isinstance(node, ast.ClassDef):
                klass = ClassInfo(
                    module=module.name, name=node.name, node=node,
                    path=module.path,
                )
                module.classes[node.name] = klass
                self.classes[klass.id] = klass
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._register_function(module, item, klass)

    # -- type resolution ------------------------------------------------
    def resolve_type_name(self, dotted: str, module: ModuleInfo) -> Optional[str]:
        """Raw (possibly dotted) type name -> type id, in module context."""
        if dotted in BUILTIN_KINDS:
            return dotted
        head, _, rest = dotted.partition(".")
        if head in module.classes:
            return module.classes[head].id
        imported = module.imports.get(head)
        if imported is not None:
            full = f"{imported}.{rest}" if rest else imported
            if full in self.classes:
                return full
            # ``from x import Class`` -> imports[Class] = "x.Class"
            if imported in self.classes and not rest:
                return imported
            return full  # external dotted name (e.g. random.Random)
        # Unique simple name anywhere in the program (common for
        # TYPE_CHECKING-only imports).
        candidates = self._class_by_simple.get(dotted)
        if candidates is not None and len(candidates) == 1:
            return candidates[0]
        return None

    def _collect_annotations(self, module: ModuleInfo) -> None:
        """Parameter/return annotations and class-level field annotations."""

        def resolve(name: str) -> Optional[str]:
            return self.resolve_type_name(name, module)

        for info in module.functions.values():
            node = info.node
            args = node.args
            for arg in (
                list(args.posonlyargs) + list(args.args)
                + list(args.kwonlyargs)
            ):
                kind = _annotation_type(arg.annotation, resolve)
                if kind is not None:
                    info.param_types[arg.arg] = kind
            info.return_type = _annotation_type(node.returns, resolve)
        for klass in module.classes.values():
            for item in klass.node.body:
                if isinstance(item, ast.AnnAssign) and isinstance(
                    item.target, ast.Name
                ):
                    kind = _annotation_type(item.annotation, resolve)
                    if kind is not None:
                        klass.attr_types[item.target.id] = kind

    def _collect_attr_assignments(self, module: ModuleInfo) -> None:
        """Instance-attribute types from ``self.x = ...`` in methods."""
        for info in module.functions.values():
            if not info.is_method or info.is_staticmethod:
                continue
            klass = module.classes.get(info.klass)
            if klass is None or not info.params:
                continue
            self_name = info.params[0]
            for node in ast.walk(info.node):
                value = None
                target = None
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target, value = node.targets[0], node.value
                elif isinstance(node, ast.AnnAssign):
                    target, value = node.target, node.value
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == self_name
                ):
                    continue
                if isinstance(node, ast.AnnAssign):
                    kind = _annotation_type(
                        node.annotation,
                        lambda n: self.resolve_type_name(n, module),
                    )
                else:
                    kind = self._shallow_value_type(value, module, info)
                if kind is not None and target.attr not in klass.attr_types:
                    klass.attr_types[target.attr] = kind

    def _shallow_value_type(
        self, value: Optional[ast.expr], module: ModuleInfo, info: FunctionInfo
    ) -> Optional[str]:
        """Constructor-call / annotated-param type of an ``__init__`` value."""
        if value is None:
            return None
        if isinstance(value, ast.Call):
            dotted = _dotted_name(value.func)
            if dotted is not None:
                resolved = self.resolve_type_name(dotted, module)
                if resolved in self.classes or (
                    resolved is not None and resolved not in BUILTIN_KINDS
                    and "." in resolved
                ):
                    return resolved
                if resolved in BUILTIN_KINDS:
                    return resolved
            return None
        if isinstance(value, ast.Name):
            return info.param_types.get(value.id)
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Constant):
            kind = type(value.value).__name__
            return kind if kind in BUILTIN_KINDS else None
        return None

    def _resolve_bases(self, module: ModuleInfo) -> None:
        for klass in module.classes.values():
            for base in klass.node.bases:
                dotted = _dotted_name(base)
                if dotted is None:
                    klass.external_bases = True
                    continue
                resolved = self.resolve_type_name(dotted, module)
                if resolved in self.classes:
                    klass.bases.append(resolved)
                else:
                    klass.external_bases = True

    # -- class queries ---------------------------------------------------
    def lookup_method(self, class_id: str, name: str) -> Optional[str]:
        """Method resolution over the internal-base MRO (best effort)."""
        seen = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            klass = self.classes.get(current)
            if klass is None:
                continue
            if name in klass.methods:
                return klass.methods[name]
            stack.extend(klass.bases)
        return None

    def lookup_attr_type(self, class_id: str, attr: str) -> Optional[str]:
        """Attribute type over the internal-base MRO (best effort)."""
        seen = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            klass = self.classes.get(current)
            if klass is None:
                continue
            if attr in klass.attr_types:
                return klass.attr_types[attr]
            stack.extend(klass.bases)
        return None

    def inherits_external(self, class_id: str) -> bool:
        """Whether the class has a base outside the program (any depth)."""
        seen = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current in seen:
                continue
            seen.add(current)
            klass = self.classes.get(current)
            if klass is None:
                continue
            if klass.external_bases:
                return True
            stack.extend(klass.bases)
        return False

    def is_subclass(self, class_id: str, ancestor_id: str) -> bool:
        """Whether ``class_id`` is ``ancestor_id`` or derives from it."""
        seen = set()
        stack = [class_id]
        while stack:
            current = stack.pop(0)
            if current == ancestor_id:
                return True
            if current in seen:
                continue
            seen.add(current)
            klass = self.classes.get(current)
            if klass is not None:
                stack.extend(klass.bases)
        return False

    def classes_named(self, simple_name: str) -> list[str]:
        """All class ids with the given simple name."""
        return sorted(self._class_by_simple.get(simple_name, []))

    # ------------------------------------------------------------------
    # Graph queries
    # ------------------------------------------------------------------
    def edges(self) -> dict:
        """Caller id -> sorted unique internal callee ids."""
        out: dict[str, list[str]] = {}
        for fn_id in sorted(self.functions):
            targets = {
                site.callee
                for site in self.functions[fn_id].call_sites
                if site.callee is not None
            }
            out[fn_id] = sorted(targets)
        return out

    def reachable_from(self, roots: Iterable[str]) -> dict:
        """BFS over internal edges; returns ``{fn_id: parent_or_None}``."""
        edges = self.edges()
        parents: dict[str, Optional[str]] = {}
        queue = []
        for root in roots:
            if root in self.functions and root not in parents:
                parents[root] = None
                queue.append(root)
        while queue:
            current = queue.pop(0)
            for callee in edges.get(current, ()):
                if callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return parents

    def call_chain(self, parents: dict, fn_id: str) -> list[str]:
        """Root -> ... -> fn path recovered from BFS parent pointers."""
        chain = [fn_id]
        while parents.get(chain[-1]) is not None:
            chain.append(parents[chain[-1]])
        return list(reversed(chain))

    def resolution_rate(self) -> float:
        """Fraction of call sites classified (1.0 when no calls at all)."""
        if not self.total_calls:
            return 1.0
        return 1.0 - self.unresolved_calls / self.total_calls

    def to_dot(
        self, root: Optional[str] = None, max_depth: Optional[int] = None
    ) -> str:
        """Graphviz DOT text for the call graph (or a subtree).

        ``root`` is a function id (or unique suffix); when given, only
        nodes reachable from it are emitted, optionally depth-bounded.
        """
        edges = self.edges()
        keep = None
        if root is not None:
            resolved_root = self._resolve_fn_ref(root)
            if resolved_root is None:
                raise KeyError(f"no function matches {root!r}")
            keep = {resolved_root: 0}
            queue = [resolved_root]
            while queue:
                current = queue.pop(0)
                depth = keep[current]
                if max_depth is not None and depth >= max_depth:
                    continue
                for callee in edges.get(current, ()):
                    if callee not in keep:
                        keep[callee] = depth + 1
                        queue.append(callee)
        lines = ["digraph callgraph {", "  rankdir=LR;", "  node [shape=box, fontsize=10];"]
        def label(fn_id: str) -> str:
            info = self.functions[fn_id]
            short = info.module.split(".", 1)[-1]
            return f"{short}:{info.qualname}"
        for caller in sorted(edges):
            if keep is not None and caller not in keep:
                continue
            for callee in edges[caller]:
                if keep is not None and callee not in keep:
                    continue
                lines.append(
                    f'  "{label(caller)}" -> "{label(callee)}";'
                )
        lines.append("}")
        return "\n".join(lines)

    def _resolve_fn_ref(self, ref: str) -> Optional[str]:
        if ref in self.functions:
            return ref
        matches = [
            fn_id for fn_id in sorted(self.functions)
            if fn_id.endswith("." + ref) or fn_id.endswith(ref)
        ]
        return matches[0] if matches else None


#: Container mutator methods (the stdlib vocabulary shared with the
#: per-file undocumented-mutation rule).
BUILTIN_MUTATORS = frozenset(
    {"add", "append", "extend", "insert", "update", "discard", "remove",
     "pop", "popitem", "clear", "setdefault", "sort", "reverse",
     "popleft", "appendleft", "extendleft"}
)

#: Read-only methods of the stdlib container / string / regex / hash /
#: file protocols.  A call spelled ``x.get(...)`` is classified by its
#: *name* even when the receiver's type is unknown: the vocabulary is
#: unambiguous enough that treating it as an effect-free builtin call
#: is sound for the deep rules (any same-named domain method that DID
#: mutate state would be caught by the per-file undocumented-mutation
#: vocabulary instead).
BUILTIN_PROTOCOL_PURE = frozenset(
    {
        # dict / list / set read API
        "get", "items", "keys", "values", "copy", "index", "count",
        "most_common", "union", "intersection", "difference",
        "symmetric_difference", "issubset", "issuperset", "isdisjoint",
        # str
        "split", "rsplit", "splitlines", "strip", "lstrip", "rstrip",
        "startswith", "endswith", "format", "join", "replace", "lower",
        "upper", "islower", "isupper", "isdigit", "isalpha", "title",
        "zfill", "ljust", "rjust", "casefold", "find", "rfind",
        "partition", "rpartition", "removeprefix", "removesuffix",
        "encode", "decode",
        # re match objects
        "group", "groups", "groupdict", "start", "end", "span",
        # hashlib
        "hexdigest", "digest",
        # file handles (the filesystem effect is charged at open())
        "write", "writelines", "read", "readline", "readlines", "flush",
        "close", "seek", "tell", "fileno",
    }
)

#: attr names whose presence in an ``if`` test marks an array-core
#: dispatch point (the PR-6 parity contract surface).
DISPATCH_ATTRS = frozenset({"array_core", "arrays", "reuse_cache"})

# External nondeterminism tables (dotted-call targets).
_ENTROPY_MODULE_PREFIXES = ("secrets.",)
_WALLCLOCK_TARGETS = frozenset(
    {"time.time", "time.time_ns", "time.localtime", "time.ctime",
     "time.gmtime", "datetime.datetime.now", "datetime.datetime.utcnow",
     "datetime.datetime.today", "datetime.date.today"}
)
_TELEMETRY_TARGETS = frozenset(
    {"time.perf_counter", "time.perf_counter_ns", "time.monotonic",
     "time.monotonic_ns", "time.process_time", "time.thread_time"}
)
_ENTROPY_TARGETS = frozenset(
    {"os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4"}
)
_FILESYSTEM_TARGETS = frozenset(
    {"os.remove", "os.unlink", "os.rename", "os.replace", "os.mkdir",
     "os.makedirs", "os.rmdir", "os.listdir", "os.scandir", "os.stat",
     "os.fsync", "os.open", "os.fdopen", "os.getcwd", "os.chdir"}
)
_FILESYSTEM_MODULE_PREFIXES = ("shutil.", "tempfile.")
_PATH_FILESYSTEM_METHODS = frozenset(
    {"open", "read_text", "write_text", "read_bytes", "write_bytes",
     "mkdir", "unlink", "rename", "replace", "exists", "glob", "rglob",
     "touch", "rmdir", "stat", "iterdir"}
)

#: str methods returning str (enough chain inference for resolution).
_STR_RETURNS_STR = frozenset(
    {"replace", "strip", "lstrip", "rstrip", "lower", "upper", "title",
     "format", "join", "ljust", "rjust", "zfill", "capitalize",
     "casefold", "expandtabs", "removeprefix", "removesuffix"}
)


def _entropy_target(target: str) -> bool:
    if target in _ENTROPY_TARGETS:
        return True
    if target.startswith(_ENTROPY_MODULE_PREFIXES):
        return True
    # Module-level random.* convenience wrappers (lowercase functions
    # backed by the hidden global RNG).  random.Random / SystemRandom
    # constructors are the approved escape hatch.
    if target.startswith("random."):
        tail = target.split(".", 1)[1]
        return "." not in tail and tail[:1].islower()
    return False


class _FunctionScanner:
    """Per-function pass: local types/origins, calls, effects, writes."""

    def __init__(
        self, program: Program, module: ModuleInfo, info: FunctionInfo
    ) -> None:
        self.program = program
        self.module = module
        self.info = info
        self.local_types: dict[str, str] = {}
        self.local_origins: dict[str, tuple] = {}
        #: local name -> ("alias", kind, target, callee, receiver_origin)
        self.callable_aliases: dict[str, tuple] = {}
        self.nested_defs: set[str] = set()
        self.dispatch_locals: set[str] = set()
        self.enclosing_class_id = (
            f"{module.name}.{info.klass}" if info.klass else None
        )

    # -- entry ---------------------------------------------------------
    def scan(self) -> None:
        body = self.info.node.body
        self._collect_locals(self.info.node)
        for statement in body:
            self._scan_node(statement)
        self._collect_dispatch_ifs(body)

    # ------------------------------------------------------------------
    # Pass A: locals
    # ------------------------------------------------------------------
    def _collect_locals(self, root) -> None:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node is not root:
                    self.nested_defs.add(node.name)
            elif isinstance(node, ast.Lambda):
                continue
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    self._record_local(target.id, node.value)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                kind = _annotation_type(
                    node.annotation,
                    lambda n: self.program.resolve_type_name(n, self.module),
                )
                if kind is not None:
                    self.local_types.setdefault(node.target.id, kind)
                if node.value is not None:
                    self._record_local(
                        node.target.id, node.value, keep_type=kind is None
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)) and isinstance(
                node.target, ast.Name
            ):
                iter_type = self.type_of(node.iter)
                elem = element_type(iter_type)
                if elem is not None:
                    self.local_types.setdefault(node.target.id, elem)
                origin = self.origin_of(node.iter)
                if origin in (ORIGIN_SELF,) or origin[0] == "param":
                    self.local_origins.setdefault(node.target.id, origin)
            elif isinstance(node, ast.withitem) and isinstance(
                node.optional_vars, ast.Name
            ):
                self.local_origins.setdefault(node.optional_vars.id, ORIGIN_NEW)

    def _record_local(self, name: str, value, keep_type: bool = True) -> None:
        # Dispatch-flag locals (``fast = state.arrays is not None``).
        for sub in ast.walk(value):
            if isinstance(sub, ast.Attribute) and sub.attr in DISPATCH_ATTRS:
                self.dispatch_locals.add(name)
                break
        pick = value
        if isinstance(pick, ast.IfExp):
            # ``x = None if c else obj.method`` — alias through the
            # informative branch.
            for candidate in (pick.body, pick.orelse):
                if not (
                    isinstance(candidate, ast.Constant)
                    and candidate.value is None
                ):
                    pick = candidate
                    break
        if isinstance(pick, ast.Lambda):
            # ``make = lambda ...``: calls through the name are local;
            # the lambda body is already folded into this function.
            self.nested_defs.add(name)
            return
        alias = self._callable_alias_of(pick)
        if alias is not None:
            self.callable_aliases.setdefault(name, alias)
            return
        if keep_type:
            kind = self.type_of(pick)
            if kind is not None:
                self.local_types.setdefault(name, kind)
        origin = self.origin_of(pick)
        self.local_origins.setdefault(name, origin)

    def _callable_alias_of(self, value) -> Optional[tuple]:
        """Bound-method / module-function alias target, if recognizable."""
        if not isinstance(value, ast.Attribute):
            return None
        base = value.value
        # Module alias: heapq.heappush
        if isinstance(base, ast.Name):
            imported = self.module.imports.get(base.id)
            if imported is not None and imported not in self.program.modules:
                target = f"{imported}.{value.attr}"
                if f"{imported}" in {
                    m.split(".")[0] for m in self.program.modules
                }:
                    pass
                if target in self.program.functions:
                    return ("internal", target, target, None)
                return ("external", target, None, None)
            if imported is not None:
                target = f"{imported}.{value.attr}"
                if target in self.program.functions:
                    return ("internal", target, target, None)
        # Bound method: obj.method where type(obj) is a program class.
        base_type = self.type_of(base)
        if base_type is not None and base_type in self.program.classes:
            method = self.program.lookup_method(base_type, value.attr)
            if method is not None:
                return ("internal", method, method, self.origin_of(base))
        return None

    # ------------------------------------------------------------------
    # Types and origins
    # ------------------------------------------------------------------
    def type_of(self, node) -> Optional[str]:
        """Static type id of an expression, or None."""
        program = self.program
        if isinstance(node, ast.Name):
            name = node.id
            if self.info.is_method and not self.info.is_staticmethod and \
                    self.info.params and name == self.info.params[0]:
                if self.info.is_classmethod:
                    return None  # cls: a class object, handled in calls
                return self.enclosing_class_id
            if name in self.local_types:
                return self.local_types[name]
            if name in self.info.param_types:
                return self.info.param_types[name]
            return None
        if isinstance(node, ast.Attribute):
            base_type = self.type_of(node.value)
            if base_type is not None and base_type in program.classes:
                return program.lookup_attr_type(base_type, node.attr)
            return None
        if isinstance(node, ast.Subscript):
            return element_type(self.type_of(node.value))
        if isinstance(node, ast.Call):
            return self._call_return_type(node)
        if isinstance(node, ast.Constant):
            kind = type(node.value).__name__
            return kind if kind in BUILTIN_KINDS else None
        if isinstance(node, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(node, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(node, ast.Tuple):
            return "tuple"
        if isinstance(node, ast.JoinedStr):
            return "str"
        if isinstance(node, ast.IfExp):
            body = self.type_of(node.body)
            orelse = self.type_of(node.orelse)
            return body if body == orelse else (body or orelse)
        if isinstance(node, ast.BoolOp):
            kinds = {self.type_of(v) for v in node.values}
            kinds.discard(None)
            return kinds.pop() if len(kinds) == 1 else None
        return None

    def _call_return_type(self, node: ast.Call) -> Optional[str]:
        func = node.func
        if (
            isinstance(func, ast.Name)
            and self.info.is_classmethod
            and self.info.params
            and func.id == self.info.params[0]
        ):
            return self.enclosing_class_id  # cls(...) in a classmethod
        dotted = _dotted_name(func)
        if dotted is not None:
            resolved = self.program.resolve_type_name(dotted, self.module)
            if resolved in self.program.classes:
                return resolved  # constructor
            head = dotted.split(".", 1)[0]
            if head in ("sorted",):
                inner = element_type(self.type_of(node.args[0])) if node.args else None
                return f"list[{inner}]" if inner else "list"
            if head in ("list", "tuple", "set", "frozenset", "dict", "str",
                        "int", "float", "bool", "bytes"):
                return "list" if head == "list" else (
                    head if head in BUILTIN_KINDS else None
                )
            if resolved is not None and resolved not in BUILTIN_KINDS and \
                    "." in resolved and resolved not in self.program.functions:
                # External constructor-ish call (random.Random(...),
                # Path(...)): keep the dotted name as the type.
                tail = resolved.rsplit(".", 1)[-1]
                if tail[:1].isupper():
                    return resolved
        # Internal function / method return annotations.
        site_target = self._resolve_callee_for_type(func)
        if site_target is not None:
            info = self.program.functions.get(site_target)
            if info is not None:
                return info.return_type
        # str method chains; external-instance method chains.
        if isinstance(func, ast.Attribute):
            base_type = self.type_of(func.value)
            if base_type == "str" or isinstance(func.value, ast.Constant):
                if func.attr in _STR_RETURNS_STR:
                    return "str"
                if func.attr in ("split", "rsplit", "splitlines"):
                    return "list[str]"
            if base_type is not None and base_type not in \
                    self.program.classes and base_type.split(
                        "[", 1
                    )[0] not in BUILTIN_KINDS:
                # A method call on an external object yields another
                # external object (argparse chains, Path chains, ...);
                # the marker type keeps further attribute calls on the
                # result classified as external instead of unresolved.
                return "external:instance"
        return None

    def _resolve_callee_for_type(self, func) -> Optional[str]:
        """Lightweight callee lookup used only for return-type chains."""
        if isinstance(func, ast.Name):
            alias = self.callable_aliases.get(func.id)
            if alias is not None and alias[0] == "internal":
                return alias[2]
            if func.id in self.module.functions:
                return self.module.functions[func.id].id
            imported = self.module.imports.get(func.id)
            if imported in self.program.functions:
                return imported
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                imported = self.module.imports.get(base.id)
                if imported is not None:
                    target = f"{imported}.{func.attr}"
                    if target in self.program.functions:
                        return target
            base_type = self.type_of(base)
            if base_type in self.program.classes:
                return self.program.lookup_method(base_type, func.attr)
        return None

    def origin_of(self, node) -> tuple:
        """Escape origin of an expression's *root* object."""
        while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
            node = node.value
        if isinstance(node, ast.Name):
            name = node.id
            if self.info.is_method and not self.info.is_staticmethod and \
                    self.info.params and name == self.info.params[0]:
                return ORIGIN_SELF
            if name in self.info.params:
                return origin_param(name)
            if name in self.local_origins:
                return self.local_origins[name]
            if name in self.callable_aliases:
                alias = self.callable_aliases[name]
                return alias[3] if alias[3] is not None else ORIGIN_UNKNOWN
            if name in self.nested_defs or name in _BUILTIN_NAMES:
                return ORIGIN_NEW
            if name in self.module.imports or name in self.module.functions \
                    or name in self.module.classes:
                return ORIGIN_GLOBAL
            return ORIGIN_UNKNOWN
        if isinstance(node, ast.Call):
            # A call result is a fresh object unless it is a known
            # accessor chain; treating it as new keeps local-object
            # mutations (journals built and returned) out of caller
            # effect sets.
            return ORIGIN_NEW
        if isinstance(node, (ast.Constant, ast.List, ast.Dict, ast.Set,
                             ast.Tuple, ast.ListComp, ast.DictComp,
                             ast.SetComp, ast.GeneratorExp, ast.JoinedStr,
                             ast.BinOp, ast.UnaryOp, ast.Compare)):
            return ORIGIN_NEW
        if isinstance(node, ast.IfExp):
            body = self.origin_of(node.body)
            orelse = self.origin_of(node.orelse)
            if body == orelse:
                return body
            for candidate in (body, orelse):
                if candidate != ORIGIN_NEW:
                    return candidate
            return ORIGIN_NEW
        return ORIGIN_UNKNOWN

    # ------------------------------------------------------------------
    # Pass B: statements -> calls / effects / writes
    # ------------------------------------------------------------------
    def _scan_node(self, node) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._scan_call(sub)
            elif isinstance(sub, ast.Assign):
                for target in sub.targets:
                    self._scan_store(sub, target)
            elif isinstance(sub, ast.AugAssign):
                self._scan_store(sub, sub.target)
            elif isinstance(sub, ast.AnnAssign):
                self._scan_store(sub, sub.target)
            elif isinstance(sub, ast.Delete):
                for target in sub.targets:
                    self._scan_store(sub, target)

    # -- stores ---------------------------------------------------------
    def _scan_store(self, stmt, target) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._scan_store(stmt, element)
            return
        if not isinstance(target, (ast.Attribute, ast.Subscript)):
            return
        origin = self.origin_of(target)
        if origin == ORIGIN_SELF or origin[0] == "param" or \
                origin == ORIGIN_GLOBAL:
            self._add_effect(
                stmt, "mutates", self._mutation_target(origin),
                lineno=target.lineno, col=target.col_offset,
            )
        self._record_guarded_writes(stmt, target)

    def _mutation_target(self, origin: tuple) -> str:
        if origin == ORIGIN_SELF:
            return "self"
        if origin == ORIGIN_GLOBAL:
            return "global"
        return f"param:{origin[1]}"

    def _record_guarded_writes(self, stmt, target) -> None:
        """Record every field write through a program-class-typed base."""
        node = target
        while isinstance(node, (ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                base_type = self.type_of(node.value)
                if base_type is not None and base_type in self.program.classes:
                    via_self = (
                        isinstance(node.value, ast.Name)
                        and self.origin_of(node.value) == ORIGIN_SELF
                    )
                    self.info.write_sites.append(
                        WriteSite(
                            node_id=id(stmt), class_id=base_type,
                            attr=node.attr, via_self=via_self,
                            lineno=node.lineno, col=node.col_offset,
                        )
                    )
            node = node.value

    # -- calls ----------------------------------------------------------
    def _scan_call(self, node: ast.Call) -> None:
        site = self._resolve_call(node)
        self.info.call_sites.append(site)
        self.program.total_calls += 1
        if site.kind == "unresolved":
            self.program.unresolved_calls += 1
            if len(self.program.unresolved_samples) < 200:
                self.program.unresolved_samples.append(
                    (self.info.id, node.lineno, site.target)
                )
        self._call_effects(node, site)

    def _resolve_call(self, node: ast.Call) -> CallSite:
        func = node.func
        make = lambda kind, target, callee=None, receiver=None: CallSite(
            caller=self.info.id, node_id=id(node), lineno=node.lineno,
            col=node.col_offset, kind=kind, target=target, callee=callee,
            receiver_origin=receiver,
        )
        program = self.program
        site: Optional[CallSite] = None
        if isinstance(func, ast.Name):
            name = func.id
            alias = self.callable_aliases.get(name)
            if alias is not None:
                kind, target, callee, receiver = alias
                site = make(kind, target, callee, receiver)
            elif name in self.nested_defs:
                site = make("local", f"<nested {name}>")
            elif name in self.module.functions:
                info = self.module.functions[name]
                site = make("internal", info.id, info.id)
            elif name in self.module.classes:
                site = self._constructor_site(node, self.module.classes[name].id)
            elif name in self.module.imports:
                imported = self.module.imports[name]
                if imported in program.functions:
                    site = make("internal", imported, imported)
                elif imported in program.classes:
                    site = self._constructor_site(node, imported)
                elif imported in program.modules:
                    site = make("unresolved", f"<module call {imported}>")
                else:
                    site = make("external", imported)
            elif self.info.is_classmethod and self.info.params and \
                    name == self.info.params[0]:
                if self.enclosing_class_id is not None:
                    site = self._constructor_site(node, self.enclosing_class_id)
            elif name in _BUILTIN_NAMES:
                site = make("builtin", name)
            elif name in self.local_origins or name in self.local_types:
                site = make("unresolved", f"<local callable {name}>")
            elif name in self.info.params:
                site = make("unresolved", f"<callable param {name}>")
            if site is None:
                site = make("unresolved", f"<name {name}>")
        elif isinstance(func, ast.Attribute):
            site = self._resolve_attribute_call(node, func, make)
        elif isinstance(func, ast.Lambda):
            site = make("local", "<lambda>")
        else:
            site = make("unresolved", "<dynamic>")
        if site.callee is not None:
            self._bind_arguments(node, site)
        else:
            self._collect_loose_origins(node, site)
        return site

    def _constructor_site(self, node: ast.Call, class_id: str) -> CallSite:
        init = self.program.lookup_method(class_id, "__init__")
        site = CallSite(
            caller=self.info.id, node_id=id(node), lineno=node.lineno,
            col=node.col_offset, kind="class", target=class_id, callee=init,
            receiver_origin=ORIGIN_NEW,
        )
        return site

    def _resolve_attribute_call(self, node, func, make) -> CallSite:
        base = func.value
        attr = func.attr
        program = self.program
        # super().method(...)
        if isinstance(base, ast.Call) and isinstance(base.func, ast.Name) \
                and base.func.id == "super":
            if self.enclosing_class_id is not None:
                klass = program.classes.get(self.enclosing_class_id)
                for base_id in (klass.bases if klass else []):
                    method = program.lookup_method(base_id, attr)
                    if method is not None:
                        return make("internal", method, method, ORIGIN_SELF)
            return make("external", f"super().{attr}")
        # Module alias: heapq.heappush, random.random, self-import use.
        dotted = _dotted_name(func)
        if dotted is not None:
            head = dotted.split(".", 1)[0]
            imported = self.module.imports.get(head)
            if imported is not None and not self._shadowed(head):
                target = imported + dotted[len(head):]
                if target in program.functions:
                    return make("internal", target, target)
                if target in program.classes:
                    return self._constructor_site(node, target)
                if imported in program.modules or target.rsplit(
                    ".", 1
                )[0] in program.modules:
                    return make("unresolved", f"<internal attr {target}>")
                return make("external", target)
            # ClassName.method(...) in the same module.
            if head in self.module.classes and "." in dotted:
                rest = dotted.split(".")[1:]
                if len(rest) == 1:
                    method = program.lookup_method(
                        self.module.classes[head].id, rest[0]
                    )
                    if method is not None:
                        return make("internal", method, method)
        # Typed receiver.
        base_type = self.type_of(base)
        if base_type is not None:
            if base_type in program.classes:
                method = program.lookup_method(base_type, attr)
                if method is not None:
                    return make(
                        "internal", method, method, self.origin_of(base)
                    )
                if program.inherits_external(base_type):
                    # Not found internally, but the class extends a
                    # stdlib/third-party base: inherited method.
                    return make(
                        "external", f"{base_type}.{attr} (inherited)",
                        None, self.origin_of(base),
                    )
                return make(
                    "unresolved", f"<{base_type}.{attr}>",
                    None, self.origin_of(base),
                )
            root_kind = base_type.split("[", 1)[0]
            if root_kind in BUILTIN_KINDS:
                return make("builtin", f"{root_kind}.{attr}",
                            None, self.origin_of(base))
            # External instance (random.Random, pathlib.Path, ...).
            return make("external", f"{base_type}.{attr}",
                        None, self.origin_of(base))
        if isinstance(base, ast.Constant) or isinstance(base, ast.JoinedStr):
            return make("builtin", f"literal.{attr}")
        if attr in BUILTIN_MUTATORS or attr in BUILTIN_PROTOCOL_PURE:
            # Unknown receiver, but the method name is stdlib container/
            # string/file vocabulary: classify by protocol.
            return make("builtin", f"?.{attr}", None, self.origin_of(base))
        return make(
            "unresolved", f"<attr {attr}>", None, self.origin_of(base)
        )

    def _shadowed(self, name: str) -> bool:
        return (
            name in self.local_types or name in self.local_origins
            or name in self.info.params or name in self.callable_aliases
        )

    def _bind_arguments(self, node: ast.Call, site: CallSite) -> None:
        callee = self.program.functions.get(site.callee)
        if callee is None:
            return
        params = list(callee.bound_params)
        if callee.is_classmethod and params:
            # ``cls`` already stripped by bound_params only for self;
            # strip cls here.
            if callee.params and callee.params[0] == params[0] and \
                    callee.params[0] in ("cls",):
                params = params[1:]
        positional = [a for a in node.args if not isinstance(a, ast.Starred)]
        for param_name, arg in zip(params, positional):
            site.arg_origins[param_name] = self.origin_of(arg)
        for keyword in node.keywords:
            if keyword.arg is not None and keyword.arg in callee.params:
                site.arg_origins[keyword.arg] = self.origin_of(keyword.value)
            elif keyword.arg is None:
                site.loose_origins.append(self.origin_of(keyword.value))
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                site.loose_origins.append(self.origin_of(arg.value))

    def _collect_loose_origins(self, node: ast.Call, site: CallSite) -> None:
        for arg in node.args:
            site.loose_origins.append(self.origin_of(arg))
        for keyword in node.keywords:
            site.loose_origins.append(self.origin_of(keyword.value))

    # -- effects --------------------------------------------------------
    def _add_effect(self, node, kind: str, target: str,
                    lineno=None, col=None) -> None:
        self.info.effect_sites.append(
            EffectSite(
                node_id=id(node), kind=kind, target=target,
                lineno=lineno if lineno is not None else node.lineno,
                col=col if col is not None else node.col_offset,
            )
        )

    def _call_effects(self, node: ast.Call, site: CallSite) -> None:
        target = site.target
        if site.kind == "external":
            if _entropy_target(target):
                self._add_effect(node, "entropy", target)
            elif target in _WALLCLOCK_TARGETS:
                self._add_effect(node, "wallclock", target)
            elif target in _TELEMETRY_TARGETS:
                pass  # measurement-only clocks: sanctioned telemetry
            elif target in _FILESYSTEM_TARGETS or target.startswith(
                _FILESYSTEM_MODULE_PREFIXES
            ):
                self._add_effect(node, "filesystem", target)
            elif target.startswith("pathlib.Path.") and target.rsplit(
                ".", 1
            )[-1] in _PATH_FILESYSTEM_METHODS:
                self._add_effect(node, "filesystem", target)
        elif site.kind == "builtin":
            name = target.rsplit(".", 1)[-1]
            if target == "print":
                self._add_effect(node, "stdout", "print")
            elif target == "open":
                self._add_effect(node, "filesystem", "open")
            elif name in BUILTIN_MUTATORS and site.receiver_origin is not None:
                origin = site.receiver_origin
                if origin == ORIGIN_SELF or origin[0] == "param" or \
                        origin == ORIGIN_GLOBAL:
                    self._add_effect(
                        node, "mutates", self._mutation_target(origin)
                    )
                self._record_mutator_write(node)
        elif site.kind == "unresolved":
            # Unknown callee: a container mutator name on an escaping
            # receiver is treated as a definite mutation (the per-file
            # rule's precision); anything else is only "maybe".
            func = node.func
            if isinstance(func, ast.Attribute):
                origin = site.receiver_origin or ORIGIN_UNKNOWN
                escaping = origin == ORIGIN_SELF or (
                    origin and origin[0] == "param"
                )
                if func.attr in BUILTIN_MUTATORS and escaping:
                    self._add_effect(
                        node, "mutates", self._mutation_target(origin)
                    )
                    self._record_mutator_write(node)
                elif escaping:
                    self._add_effect(
                        node, "maybe_mutates", self._mutation_target(origin)
                    )
            for origin in site.loose_origins:
                if origin and origin[0] == "param":
                    self._add_effect(
                        node, "maybe_mutates", f"param:{origin[1]}"
                    )
                elif origin == ORIGIN_SELF:
                    self._add_effect(node, "maybe_mutates", "self")

    def _record_mutator_write(self, node: ast.Call) -> None:
        """A ``x.field.add(...)`` style mutator is a field write too."""
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        chain = func.value
        while isinstance(chain, (ast.Attribute, ast.Subscript)):
            if isinstance(chain, ast.Attribute):
                base_type = self.type_of(chain.value)
                if base_type is not None and base_type in self.program.classes:
                    via_self = (
                        isinstance(chain.value, ast.Name)
                        and self.origin_of(chain.value) == ORIGIN_SELF
                    )
                    self.info.write_sites.append(
                        WriteSite(
                            node_id=id(node), class_id=base_type,
                            attr=chain.attr, via_self=via_self,
                            lineno=chain.lineno, col=chain.col_offset,
                        )
                    )
            chain = chain.value

    # ------------------------------------------------------------------
    # Dispatch points (core-parity-drift substrate)
    # ------------------------------------------------------------------
    def _test_is_dispatch(self, test) -> Optional[str]:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr in DISPATCH_ATTRS:
                return sub.attr
            if isinstance(sub, ast.Name) and sub.id in self.dispatch_locals:
                return sub.id
        return None

    def _collect_dispatch_ifs(self, body) -> None:
        self._walk_block(list(body))

    def _walk_block(self, stmts) -> None:
        for index, stmt in enumerate(stmts):
            if isinstance(stmt, ast.If):
                flag = self._test_is_dispatch(stmt.test)
                if flag is not None:
                    self._record_dispatch(stmt, stmts[index + 1:], flag)
            for attr in ("body", "orelse", "finalbody"):
                inner = getattr(stmt, attr, None)
                if inner:
                    self._walk_block(list(inner))
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk_block(list(handler.body))

    @staticmethod
    def _terminates(stmts) -> bool:
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Continue, ast.Break, ast.Raise)
        )

    def _record_dispatch(self, stmt: ast.If, rest, flag: str) -> None:
        body_stmts = stmt.body
        if stmt.orelse:
            else_stmts = stmt.orelse
            has_else = True
        elif self._terminates(body_stmts) and rest:
            # Guard-style dispatch: ``if fast: ...; continue`` — the
            # implicit else is the remainder of the enclosing block.
            else_stmts = rest
            has_else = False
        else:
            return  # pure add-on branch: nothing to compare against
        collect = lambda nodes: frozenset(
            id(sub) for root in nodes for sub in ast.walk(root)
        )
        self.info.dispatch_ifs.append(
            DispatchIf(
                node_id=id(stmt), lineno=stmt.lineno, col=stmt.col_offset,
                flag=flag, body_ids=collect(body_stmts),
                else_ids=collect(else_stmts), has_else=has_else,
            )
        )

"""Runtime counterpart of the static pass: one checker, one sanitizer.

:func:`check_all` consolidates the three invariant checkers that grew
up independently — ``RoutingState.check_consistency`` (bookkeeping),
``route.verify.verify_layout`` (electrical), and
``IncrementalTiming.audit`` (incremental-vs-fresh STA) — behind a
single entry point that the annealer's ``audit()``, the sanitizer, and
the tests all share.

:class:`MoveSanitizer` is the paranoid mode behind
``AnnealerConfig(sanitize=True)``.  After every move transaction it
cross-checks the three things the hot path silently depends on:

1. **Rollback completeness** — a rejected move must restore placement,
   routing claims, unrouted bookkeeping, and timing state bit-exactly.
   The sanitizer digests the semantic state before the move and
   compares after the rollback (memoization side-state — negative
   caches and release logs — is deliberately excluded: it may advance,
   never lie).
2. **Negative-cache coherence** — a cached "this net cannot route
   here" entry that still reads hopeless must agree with a fresh,
   side-effect-free feasibility probe.  One channel (and one net's
   global entry) is sampled per move, round-robin, so the cost stays
   bounded and no RNG is consumed — the sanitizer must be invisible to
   the random stream.
3. **Audit cleanliness** — :func:`check_all` after every accepted move.

Violations raise a structured :class:`SanitizerError` naming the
offending move, the phase, and every problem found.
"""

from __future__ import annotations

from typing import Any, Optional

from ..route.state import RoutingState
from ..route.verify import verify_layout


def check_all(
    state: RoutingState,
    timing: Optional[Any] = None,
    require_complete: bool = False,
) -> list[str]:
    """Every invariant problem across routing bookkeeping, electrical
    structure, and (when ``timing`` is given) incremental timing.

    Empty list = clean.  ``require_complete`` additionally reports
    unrouted nets; intermediate annealer layouts are legally incomplete
    ("unroutability is cost, not an error"), so it defaults to False.
    """
    problems = state.check_consistency()
    problems.extend(verify_layout(state, require_complete=require_complete))
    if timing is not None:
        problems.extend(timing.audit())
    arrays = getattr(state, "arrays", None)
    if arrays is not None:
        problems.extend(arrays.check_all())
    return problems


class SanitizerError(RuntimeError):
    """A move transaction broke an invariant the sanitizer watches.

    Attributes
    ----------
    phase: ``"initial"``, ``"commit"``, or ``"rollback"``.
    move: the offending move (None for the initial state check).
    problems: human-readable descriptions, one per violation.
    """

    def __init__(self, phase: str, move: Any, problems: list[str]) -> None:
        self.phase = phase
        self.move = move
        self.problems = list(problems)
        detail = "\n".join(f"  - {problem}" for problem in self.problems)
        super().__init__(
            f"sanitizer caught {len(self.problems)} problem(s) at "
            f"{phase} of move {move!r}:\n{detail}"
        )


def layout_digest(ctx: Any) -> dict[str, Any]:
    """Hashable snapshot of every *semantic* field of the layout state.

    Excludes memoization side-state (negative caches, release logs,
    net delay caches): those are allowed to advance across a rejected
    move because they are pure functions of the semantic state.
    """
    placement = ctx.placement
    state = ctx.state
    timing = ctx.timing
    num_cells = placement.netlist.num_cells
    routes = tuple(
        (
            route.vertical,
            tuple(sorted(route.claims.items())),
            tuple(
                (channel, tuple(columns))
                for channel, columns in sorted(route.pin_channels.items())
            ),
            route.cmin, route.cmax, route.xmin, route.xmax,
        )
        for route in state.routes
    )
    return {
        "placement": (
            tuple(placement.slot_of(index) for index in range(num_cells)),
            tuple(placement.pinmap_index(index) for index in range(num_cells)),
        ),
        "routing": routes,
        "unrouted": (
            frozenset(state.unrouted_global),
            tuple(frozenset(pending) for pending in state.unrouted_detail),
            frozenset(state.dirty_channels),
        ),
        "timing": (
            tuple(timing.arrival),
            tuple(sorted(timing.boundary_in.items())),
        ),
    }


class MoveSanitizer:
    """Per-move invariant cross-checker (see module docstring).

    ``check_every`` thins the full :func:`check_all` sweep to every
    N-th accepted move; the cheap rollback digest and the sampled cache
    probes still run on every move.
    """

    def __init__(self, check_every: int = 1) -> None:
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.check_every = check_every
        self._moves = 0

    # -- hooks the annealer calls --------------------------------------
    def check_initial(self, ctx: Any) -> None:
        """Validate the freshly-constructed layout before any move."""
        problems = check_all(ctx.state, ctx.timing)
        if problems:
            raise SanitizerError("initial", None, problems)

    def capture(self, ctx: Any) -> dict[str, Any]:
        """Digest the semantic state before a move is applied."""
        return layout_digest(ctx)

    def check_commit(self, ctx: Any, move: Any) -> None:
        """Cross-check invariants after an accepted move."""
        self._moves += 1
        problems = self._cache_probe(ctx.state)
        if self._moves % self.check_every == 0:
            problems.extend(check_all(ctx.state, ctx.timing))
        if problems:
            raise SanitizerError("commit", move, problems)

    def check_rollback(
        self, ctx: Any, move: Any, before: dict[str, Any]
    ) -> None:
        """Verify a rejected move was undone bit-exactly."""
        self._moves += 1
        after = layout_digest(ctx)
        problems = [
            f"rollback failed to restore {name} state bit-exactly"
            for name in before
            if before[name] != after[name]
        ]
        problems.extend(self._cache_probe(ctx.state))
        if problems:
            raise SanitizerError("rollback", move, problems)

    # -- sampled probes ------------------------------------------------
    def _cache_probe(self, state: RoutingState) -> list[str]:
        """One channel's detail cache + one net's global cache, round-robin,
        plus (under the flat-array core) one array-coherence sample:
        occupancy bitmasks vs owner arrays vs committed claims, and one
        version-valid delay-cache entry vs a bit-exact recompute.

        Deterministic sampling (a move counter, never an RNG) keeps the
        sanitizer invisible to the annealer's random stream.
        """
        problems: list[str] = []
        num_channels = state.fabric.num_channels
        if num_channels:
            problems.extend(
                state.audit_negative_caches(self._moves % num_channels)
            )
        num_nets = len(state.routes)
        if num_nets:
            problems.extend(state.audit_global_cache(self._moves % num_nets))
        arrays = getattr(state, "arrays", None)
        if arrays is not None:
            problems.extend(arrays.probe(self._moves))
        return problems

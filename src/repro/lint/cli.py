"""Command line for the static pass: ``python -m repro.lint [paths]``.

Also reachable as ``repro-fpga lint`` from the main CLI.  Exit codes:
0 = clean, 1 = violations found, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .engine import lint_paths
from .rules import default_rules, rules_by_name


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the lint CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga lint",
        description="Determinism & invariant static analysis for the "
        "repro codebase (see docs/LINT.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the available rules and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line (diagnostics only)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in default_rules():
            print(f"{rule.name:>24}  {rule.summary}")
        return 0

    rules = None
    if args.rules:
        available = rules_by_name()
        selected = []
        for name in args.rules.split(","):
            name = name.strip()
            if name not in available:
                print(
                    f"error: unknown rule {name!r}; available: "
                    f"{', '.join(sorted(available))}",
                    file=sys.stderr,
                )
                return 2
            selected.append(available[name])
        rules = tuple(selected)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return 2

    findings = lint_paths(paths, rules=rules)
    for diagnostic in findings:
        print(diagnostic.format())
    if not args.quiet:
        noun = "violation" if len(findings) == 1 else "violations"
        print(f"repro-lint: {len(findings)} {noun}")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

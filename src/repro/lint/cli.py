"""Command line for the static pass: ``python -m repro.lint [paths]``.

Also reachable as ``repro-fpga lint`` from the main CLI.  Exit codes
follow the run CLI's convention:

* ``0`` — clean (no findings; with ``--baseline``, nothing new and no
  stale waivers);
* ``1`` — findings (or a baseline ratchet violation: a new finding, or
  a waiver whose finding has been fixed but not deleted);
* ``2`` — usage/config error (unknown rule, missing path, malformed
  baseline).

``--deep`` adds the whole-program analysis (call graph + effect
inference, see :mod:`repro.lint.deep`); ``--format json|sarif`` and
``--output`` feed machine consumers while stdout keeps the human text;
``--dot`` exports the call graph for Graphviz.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from .engine import lint_paths
from .rules import UndocumentedMutationRule, default_rules, rules_by_name

#: Typed exit codes (mirrors repro.cli's 0/1/2 convention).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """Construct the argparse parser for the lint CLI."""
    parser = argparse.ArgumentParser(
        prog="repro-fpga lint",
        description="Determinism & invariant static analysis for the "
        "repro codebase (see docs/LINT.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        help="comma-separated subset of rule names to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the available rules (per-file and deep) and exit",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress the summary line (diagnostics only)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="parse and check files in N parallel processes "
        "(per-file rules only; output order is unchanged)",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="run the whole-program analysis: call graph, transitive "
        "effects, and the deep rules (transitive-nondeterminism, "
        "unjournaled-mutation, core-parity-drift, effect-docstring-sync)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="ratchet against a committed baseline: findings matching a "
        "waiver pass, new findings fail, stale waivers fail",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report format for --output (stdout always gets text)",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the formatted report to FILE",
    )
    parser.add_argument(
        "--dot", metavar="FILE",
        help="export the call graph as Graphviz DOT (implies --deep "
        "analysis of the given paths)",
    )
    parser.add_argument(
        "--dot-root", metavar="QUALNAME",
        help="restrict the DOT export to the subtree reachable from "
        "this function (suffix match, e.g. 'transaction.apply_move')",
    )
    parser.add_argument(
        "--dot-depth", type=int, metavar="N",
        help="bound the DOT subtree depth (with --dot-root)",
    )
    return parser


def _select_rules(names_arg: str):
    available = rules_by_name()
    selected = []
    for name in names_arg.split(","):
        name = name.strip()
        if name not in available:
            print(
                f"error: unknown rule {name!r}; available: "
                f"{', '.join(sorted(available))}",
                file=sys.stderr,
            )
            return None
        selected.append(available[name])
    return tuple(selected)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Lint CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        from .deep import DEEP_RULES

        for rule in default_rules():
            print(f"{rule.name:>28}  {rule.summary}")
        for name in sorted(DEEP_RULES):
            marker = "" if name == "unused-suppression" else " [--deep]"
            print(f"{name:>28}  {DEEP_RULES[name]}{marker}")
        return EXIT_CLEAN

    rules = None
    if args.rules:
        rules = _select_rules(args.rules)
        if rules is None:
            return EXIT_USAGE_ERROR

    if args.jobs < 1:
        print("error: --jobs must be >= 1", file=sys.stderr)
        return EXIT_USAGE_ERROR

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for p in missing:
            print(f"error: no such path: {p}", file=sys.stderr)
        return EXIT_USAGE_ERROR

    deep_needed = args.deep or args.dot is not None
    per_file_rules = rules
    if args.deep and rules is None:
        # effect-docstring-sync supersedes the per-file verb heuristic:
        # running both would double-report every mutation finding.
        per_file_rules = tuple(
            rule for rule in default_rules()
            if not isinstance(rule, UndocumentedMutationRule)
        )

    findings = lint_paths(paths, rules=per_file_rules, jobs=args.jobs)

    program = None
    if deep_needed:
        from .deep import run_deep

        result = run_deep(paths)
        program = result.program
        if args.deep:
            findings = sorted(
                findings + result.diagnostics,
                key=lambda d: (d.path, d.line, d.col, d.rule),
            )
        if args.dot is not None:
            try:
                dot_text = program.to_dot(
                    root=args.dot_root, max_depth=args.dot_depth
                )
            except KeyError as exc:
                print(f"error: {exc.args[0]}", file=sys.stderr)
                return EXIT_USAGE_ERROR
            Path(args.dot).write_text(dot_text, encoding="utf-8")

    baseline_result = None
    if args.baseline is not None:
        from .deep import BaselineError, apply_baseline, load_baseline

        try:
            waivers = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE_ERROR
        baseline_result = apply_baseline(findings, waivers)
        reported = baseline_result.new
    else:
        reported = findings

    for diagnostic in reported:
        print(diagnostic.format())
    failed = bool(reported)
    if baseline_result is not None:
        for waiver in baseline_result.stale:
            print(
                f"{waiver.path}: [stale-waiver] baseline entry "
                f"({waiver.rule}, {waiver.symbol}) matches no finding; "
                f"delete it from the baseline (ratchet)"
            )
            failed = True

    if args.output is not None:
        from .deep import render_json, render_sarif

        if args.format == "json":
            text = render_json(reported, program)
        elif args.format == "sarif":
            text = render_sarif(reported)
        else:
            text = "".join(d.format() + "\n" for d in reported)
        Path(args.output).write_text(text, encoding="utf-8")

    if not args.quiet:
        noun = "violation" if len(reported) == 1 else "violations"
        extras = []
        if baseline_result is not None:
            extras.append(f"{len(baseline_result.waived)} waived")
            if baseline_result.stale:
                extras.append(
                    f"{len(baseline_result.stale)} stale waiver(s)"
                )
        if program is not None:
            extras.append(
                f"call resolution {100 * program.resolution_rate():.1f}% "
                f"({program.unresolved_calls}/{program.total_calls} "
                f"unresolved)"
            )
        suffix = f" ({'; '.join(extras)})" if extras else ""
        print(f"repro-lint: {len(reported)} {noun}{suffix}")
    return EXIT_FINDINGS if failed else EXIT_CLEAN


if __name__ == "__main__":
    sys.exit(main())

"""Rule engine: parse, run rules, honor in-source suppressions.

The engine is deliberately tiny: a :class:`Diagnostic` record, a
suppression-comment parser, and drivers that lint a source string, a
file, or a directory tree.  All rule logic lives in
:mod:`repro.lint.rules`; the engine only decides *which* findings
survive (suppressions) and in what order they are reported
(path, then line, then column, then rule — so output is stable and
diffable, which CI depends on).

Suppression syntax
------------------
``# repro-lint: disable=rule-a,rule-b`` — as a trailing comment it
suppresses those rules on its own line; on a line of its own it
suppresses them on the next line (for statements that are awkward to
tag inline).  ``# repro-lint: disable-file=rule-a`` anywhere in the
file suppresses the rule for the whole file.  The rule name ``all``
matches every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why.

    ``symbol`` is the fully-qualified function id for deep (whole-
    program) findings — it is what the baseline ratchet keys on, so a
    waiver survives unrelated line churn.  Per-file findings leave it
    empty.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    def format(self) -> str:
        """The canonical one-line rendering used by the CLI."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


@dataclass(frozen=True)
class SuppressionRecord:
    """One suppression comment, with enough location to audit it."""

    comment_line: int
    col: int
    scope: str  # "file" or "line"
    target_line: int  # line whose findings it silences (0 for file scope)
    rules: frozenset


def parse_suppression_records(source: str) -> list[SuppressionRecord]:
    """Every suppression comment in the source, in order."""
    records: list[SuppressionRecord] = []
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        names = {part.strip() for part in match.group("rules").split(",")}
        names.discard("")
        if match.group("scope"):
            records.append(
                SuppressionRecord(
                    lineno, match.start(), "file", 0, frozenset(names)
                )
            )
            continue
        standalone = not text[: match.start()].strip()
        target = lineno + 1 if standalone else lineno
        records.append(
            SuppressionRecord(
                lineno, match.start(), "line", target, frozenset(names)
            )
        )
    return records


def parse_suppressions(
    source: str,
) -> tuple[set[str], dict[int, set[str]]]:
    """Extract suppression comments from source text.

    Returns ``(file_level_rules, line -> rules)``.  A marker in a
    trailing comment applies to its own line; a marker on a standalone
    comment line applies to the next line.
    """
    file_rules: set[str] = set()
    by_line: dict[int, set[str]] = {}
    for record in parse_suppression_records(source):
        if record.scope == "file":
            file_rules.update(record.rules)
        else:
            by_line.setdefault(record.target_line, set()).update(record.rules)
    return file_rules, by_line


def _is_suppressed(
    diagnostic: Diagnostic,
    file_rules: set[str],
    by_line: dict[int, set[str]],
) -> bool:
    if "all" in file_rules or diagnostic.rule in file_rules:
        return True
    line_rules = by_line.get(diagnostic.line)
    if line_rules is None:
        return False
    return "all" in line_rules or diagnostic.rule in line_rules


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence["Rule"]] = None,  # noqa: F821 (rules module)
) -> list[Diagnostic]:
    """Lint one source string; returns surviving diagnostics, sorted."""
    from .rules import default_rules

    active = default_rules() if rules is None else tuple(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path,
                exc.lineno or 1,
                max(0, (exc.offset or 1) - 1),
                "parse-error",
                f"could not parse file: {exc.msg}",
            )
        ]
    file_rules, by_line = parse_suppressions(source)
    raw: list[Diagnostic] = []
    for rule in active:
        raw.extend(rule.check(tree, source=source, path=path))
    findings = [
        d for d in raw if not _is_suppressed(d, file_rules, by_line)
    ]
    findings.extend(
        _unused_suppressions(source, path, raw, active, file_rules, by_line)
    )
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def _unused_suppressions(
    source: str,
    path: str,
    raw: Sequence[Diagnostic],
    active: Sequence["Rule"],  # noqa: F821
    file_rules: set[str],
    by_line: dict[int, set[str]],
) -> list[Diagnostic]:
    """A suppression that silences nothing is itself a finding.

    Only rules that actually ran this invocation are judged: under a
    ``--rules`` subset, a comment naming an unselected rule might well
    be load-bearing, so it is left alone.
    """
    active_names = {rule.name for rule in active}
    findings: list[Diagnostic] = []
    for record in parse_suppression_records(source):
        for name in sorted(record.rules):
            if name != "all" and name not in active_names:
                continue
            if record.scope == "file":
                used = any(
                    name in ("all", d.rule) for d in raw
                )
            else:
                used = any(
                    d.line == record.target_line
                    and name in ("all", d.rule)
                    for d in raw
                )
            if used:
                continue
            what = (
                "every rule" if name == "all" else f"rule {name!r}"
            )
            where = (
                "anywhere in the file" if record.scope == "file"
                else f"on line {record.target_line}"
            )
            diagnostic = Diagnostic(
                path, record.comment_line, record.col,
                "unused-suppression",
                f"suppression of {what} matches no finding {where}; "
                f"delete the stale comment so real waivers stay visible",
            )
            if not _is_suppressed(diagnostic, file_rules, by_line):
                findings.append(diagnostic)
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence["Rule"]] = None  # noqa: F821
) -> list[Diagnostic]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps report order (and CI logs) independent of
    filesystem enumeration order.
    """
    found: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            found.extend(sorted(entry.rglob("*.py")))
        else:
            found.append(entry)
    return found


def _lint_file_worker(
    path_str: str, rule_names: Optional[tuple]
) -> list[Diagnostic]:
    """Process-pool worker: rules travel by name (instances don't pickle)."""
    from .rules import rules_by_name

    rules = None
    if rule_names is not None:
        registry = rules_by_name()
        rules = tuple(registry[name] for name in rule_names)
    return lint_file(Path(path_str), rules=rules)


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence["Rule"]] = None,  # noqa: F821
    jobs: int = 1,
) -> list[Diagnostic]:
    """Lint every ``.py`` file reachable from ``paths``.

    ``jobs > 1`` parses and checks files in a process pool.  Results
    are collected in submission (sorted-path) order, so the report is
    byte-identical to a serial run.  Parallelism silently degrades to
    serial when the rule set contains instances the worker cannot
    reconstruct by name (custom rules passed programmatically).
    """
    files = iter_python_files(paths)
    if jobs > 1 and len(files) > 1:
        from .rules import rules_by_name

        registry = rules_by_name()
        rule_names: Optional[tuple] = None
        reconstructible = True
        if rules is not None:
            names = tuple(rule.name for rule in rules)
            reconstructible = all(
                name in registry and type(registry[name]) is type(rule)
                for name, rule in zip(names, rules)
            )
            rule_names = names
        if reconstructible:
            from concurrent.futures import ProcessPoolExecutor

            findings: list[Diagnostic] = []
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                for chunk in pool.map(
                    _lint_file_worker,
                    [str(p) for p in files],
                    [rule_names] * len(files),
                ):
                    findings.extend(chunk)
            return findings
    findings = []
    for file_path in files:
        findings.extend(lint_file(file_path, rules=rules))
    return findings

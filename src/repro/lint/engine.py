"""Rule engine: parse, run rules, honor in-source suppressions.

The engine is deliberately tiny: a :class:`Diagnostic` record, a
suppression-comment parser, and drivers that lint a source string, a
file, or a directory tree.  All rule logic lives in
:mod:`repro.lint.rules`; the engine only decides *which* findings
survive (suppressions) and in what order they are reported
(path, then line, then column, then rule — so output is stable and
diffable, which CI depends on).

Suppression syntax
------------------
``# repro-lint: disable=rule-a,rule-b`` — as a trailing comment it
suppresses those rules on its own line; on a line of its own it
suppresses them on the next line (for statements that are awkward to
tag inline).  ``# repro-lint: disable-file=rule-a`` anywhere in the
file suppresses the rule for the whole file.  The rule name ``all``
matches every rule.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The canonical one-line rendering used by the CLI."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


_SUPPRESS = re.compile(
    r"#\s*repro-lint:\s*disable(?P<scope>-file)?\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_\-]+(?:\s*,\s*[A-Za-z0-9_\-]+)*)"
)


def parse_suppressions(
    source: str,
) -> tuple[set[str], dict[int, set[str]]]:
    """Extract suppression comments from source text.

    Returns ``(file_level_rules, line -> rules)``.  A marker in a
    trailing comment applies to its own line; a marker on a standalone
    comment line applies to the next line.
    """
    file_rules: set[str] = set()
    by_line: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS.search(text)
        if match is None:
            continue
        names = {part.strip() for part in match.group("rules").split(",")}
        names.discard("")
        if match.group("scope"):
            file_rules.update(names)
            continue
        standalone = not text[: match.start()].strip()
        target = lineno + 1 if standalone else lineno
        by_line.setdefault(target, set()).update(names)
    return file_rules, by_line


def _is_suppressed(
    diagnostic: Diagnostic,
    file_rules: set[str],
    by_line: dict[int, set[str]],
) -> bool:
    if "all" in file_rules or diagnostic.rule in file_rules:
        return True
    line_rules = by_line.get(diagnostic.line)
    if line_rules is None:
        return False
    return "all" in line_rules or diagnostic.rule in line_rules


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence["Rule"]] = None,  # noqa: F821 (rules module)
) -> list[Diagnostic]:
    """Lint one source string; returns surviving diagnostics, sorted."""
    from .rules import default_rules

    active = default_rules() if rules is None else tuple(rules)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path,
                exc.lineno or 1,
                max(0, (exc.offset or 1) - 1),
                "parse-error",
                f"could not parse file: {exc.msg}",
            )
        ]
    file_rules, by_line = parse_suppressions(source)
    findings: list[Diagnostic] = []
    for rule in active:
        for diagnostic in rule.check(tree, source=source, path=path):
            if not _is_suppressed(diagnostic, file_rules, by_line):
                findings.append(diagnostic)
    findings.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return findings


def lint_file(
    path: Path, rules: Optional[Sequence["Rule"]] = None  # noqa: F821
) -> list[Diagnostic]:
    """Lint one file on disk."""
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rules=rules)


def iter_python_files(paths: Iterable[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Sorted traversal keeps report order (and CI logs) independent of
    filesystem enumeration order.
    """
    found: list[Path] = []
    for entry in paths:
        entry = Path(entry)
        if entry.is_dir():
            found.extend(sorted(entry.rglob("*.py")))
        else:
            found.append(entry)
    return found


def lint_paths(
    paths: Iterable[Path],
    rules: Optional[Sequence["Rule"]] = None,  # noqa: F821
) -> list[Diagnostic]:
    """Lint every ``.py`` file reachable from ``paths``."""
    findings: list[Diagnostic] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, rules=rules))
    return findings

"""Flat-array core state: the bundle behind ``AnnealerConfig(array_core=True)``.

The move loop's hot state lives in flat arrays rather than object-graph
walks:

* **occupancy** — every channel (and vertical column) keeps one integer
  bitmask per track (bit ``s`` set = segment ``s`` owned), so route
  feasibility is a single ``occ & run_mask`` test against the shared
  per-segmentation candidate tables
  (:class:`repro.arch.channel.SegmentationTables`);
* **route versions** — one monotonic counter per net
  (``RoutingState.route_version``, a stdlib ``array('Q')``), bumped by
  every route mutation; version equality proves a net's record is
  untouched, which keys the journal's phantom-restore fast path and the
  timing layer's delay-cache reuse;
* **RC kernels** — Elmore delays run over flattened parent-pointer /
  cap / resistance arrays with two prefix passes
  (:func:`repro.timing.elmore.routed_sink_delays`), no per-node objects.

Those arrays are not mirrors to keep in sync — they *are* the hot-path
state, maintained by the same mutation points as the object books
(``Channel.claim/release/reclaim``, the ``RoutingState`` commit/rip-up
methods).  :class:`ArrayState` is the per-run bundle that (a) flips the
gated fast paths on by installing itself as ``state.arrays`` and setting
``timing.reuse_cache``, and (b) carries the cross-validation probes the
``array-coherence`` sanitizer rule runs: array occupancy vs owner arrays
vs per-net claims, and version-valid delay-cache entries vs a bit-exact
recompute.

numpy policy: auto-detected (:data:`HAVE_NUMPY`) and used only for
exact integer bulk work in audits — never in float kernels, whose
operation order defines the bit-identical results contract.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:
    from ..route.state import RoutingState
    from ..timing.incremental import IncrementalTiming

try:  # pragma: no cover - exercised via HAVE_NUMPY both ways in CI
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False


def _expected_occ_masks(channel) -> list[int]:
    """Per-track occupancy bitmasks recomputed from the owner arrays."""
    masks = []
    for owners in channel._owner:
        expected = 0
        for seg, owner in enumerate(owners):
            if owner is not None:
                expected |= 1 << seg
        masks.append(expected)
    return masks


class ArrayState:
    """Per-run flat-array bundle: index maps, live array views, probes.

    Constructed once per annealer run (:func:`attach`); the index maps
    are stable for the run because the netlist is frozen and the fabric
    geometry never changes after construction.
    """

    def __init__(
        self, state: "RoutingState", timing: Optional["IncrementalTiming"]
    ) -> None:
        self.state = state
        self.timing = timing
        fabric = state.fabric
        # Stable index maps, built once: routing state is keyed by
        # integer indices everywhere in the hot loop; the name maps
        # exist for probes and reports that start from netlist names.
        self.cell_index = {
            cell.name: cell.index for cell in state.netlist.cells
        }
        self.net_index = {net.name: net.index for net in state.netlist.nets}
        self.num_nets = state.netlist.num_nets
        self.num_channels = fabric.num_channels
        self.num_vcolumns = len(fabric.vcolumns)
        # Live views of the flat hot-path arrays (shared objects, not
        # copies): per-net route versions, per-track occupancy bitmask
        # lists per channel plane.
        self.route_version = state.route_version
        self.channel_occ = [channel._occ for channel in fabric.channels]
        self.vcolumn_occ = [vc._channel._occ for vc in fabric.vcolumns]

    @classmethod
    def attach(
        cls, state: "RoutingState", timing: Optional["IncrementalTiming"]
    ) -> "ArrayState":
        """Build the bundle and switch the gated fast paths on.

        Mutates: ``state.arrays`` (journal phantom-restore keys on it)
        and ``timing.reuse_cache`` (delay-cache version reuse).
        """
        arrays = cls(state, timing)
        state.arrays = arrays
        if timing is not None:
            timing.reuse_cache = True
        return arrays

    # ------------------------------------------------------------------
    # Coherence probes (the sanitizer's array-coherence rule)
    # ------------------------------------------------------------------
    def _channel_problems(self, label: str, channel, claims) -> list[str]:
        """Cross-validate one channel plane: bitmask vs owners vs claims.

        ``claims`` maps net index -> claim-like record with ``track``,
        ``first_seg``, ``last_seg``.
        """
        problems: list[str] = []
        expected = _expected_occ_masks(channel)
        for track, mask in enumerate(channel._occ):
            if mask != expected[track]:
                problems.append(
                    f"array-coherence: {label} t{track} occupancy mask "
                    f"{mask:#x} but owners imply {expected[track]:#x}"
                )
        claim_mask = [0] * channel.num_tracks
        for net_idx, claim in claims:
            run = (1 << (claim.last_seg + 1)) - (1 << claim.first_seg)
            if claim_mask[claim.track] & run:
                problems.append(
                    f"array-coherence: {label} t{claim.track} has "
                    f"overlapping claims (net {net_idx})"
                )
            claim_mask[claim.track] |= run
            for seg in range(claim.first_seg, claim.last_seg + 1):
                owner = channel._owner[claim.track][seg]
                if owner != net_idx:
                    problems.append(
                        f"array-coherence: {label} t{claim.track} s{seg} "
                        f"owned by {owner}, claim says net {net_idx}"
                    )
        for track in range(channel.num_tracks):
            if claim_mask[track] != channel._occ[track]:
                problems.append(
                    f"array-coherence: {label} t{track} occupancy mask "
                    f"{channel._occ[track]:#x} but committed claims imply "
                    f"{claim_mask[track]:#x}"
                )
        return problems

    def probe_channel(self, channel_index: int) -> list[str]:
        """Cross-validate one horizontal channel's occupancy arrays."""
        channel = self.state.fabric.channels[channel_index]
        claims = [
            (route.net_index, claim)
            for route in self.state.routes
            for claim_channel, claim in route.claims.items()
            if claim_channel == channel_index
        ]
        return self._channel_problems(f"ch{channel_index}", channel, claims)

    def probe_vcolumn(self, column: int) -> list[str]:
        """Cross-validate one vertical column's occupancy arrays."""
        vcolumn = self.state.fabric.vcolumns[column]
        claims = [
            (route.net_index, route.vertical)
            for route in self.state.routes
            if route.vertical is not None and route.vertical.column == column
        ]
        return self._channel_problems(f"vcol{column}", vcolumn._channel, claims)

    def probe_net_timing(self, net_index: int) -> list[str]:
        """Cross-validate one net's version-valid delay-cache entry.

        A cache entry whose version matches the net's route version is
        the one the reuse fast path would trust without recomputing;
        this probe recomputes it and demands bit-exact agreement.
        """
        timing = self.timing
        if timing is None:
            return []
        cached = timing._delay_cache[net_index]
        if cached is None:
            return []
        if timing._cache_version[net_index] != self.route_version[net_index]:
            return []
        from ..timing.analyzer import net_sink_delays

        fresh = net_sink_delays(self.state, timing.tech, net_index)
        if fresh != cached:
            return [
                f"array-coherence: net {net_index} version-valid delay "
                f"cache {cached!r} != recompute {fresh!r}"
            ]
        return []

    def probe(self, counter: int) -> list[str]:
        """Bounded round-robin probe for the every-move sanitizer hook.

        Checks one channel, one vertical column, and one net's timing
        cache per call, cycling with ``counter`` so a long run sweeps
        everything repeatedly at O(1) channels per move.
        """
        problems: list[str] = []
        if self.num_channels:
            problems += self.probe_channel(counter % self.num_channels)
        if self.num_vcolumns:
            problems += self.probe_vcolumn(counter % self.num_vcolumns)
        if self.num_nets:
            problems += self.probe_net_timing(counter % self.num_nets)
        return problems

    def check_all(self) -> list[str]:
        """Exhaustive coherence sweep (tests and ``annealer.audit``)."""
        problems: list[str] = []
        for channel_index in range(self.num_channels):
            problems += self.probe_channel(channel_index)
        for column in range(self.num_vcolumns):
            problems += self.probe_vcolumn(column)
        for net_index in range(self.num_nets):
            problems += self.probe_net_timing(net_index)
        problems += self.audit_column_occupancy()
        return problems

    # ------------------------------------------------------------------
    # Bulk integer audits (numpy-accelerated when available)
    # ------------------------------------------------------------------
    def audit_column_occupancy(self) -> list[str]:
        """Check every channel's column-occupancy histogram two ways.

        The object-graph side walks owner arrays
        (:meth:`Channel.column_occupancy`); the array side expands the
        occupancy bitmasks over the segment geometry — vectorized with
        numpy when available, pure integer Python otherwise.  Both are
        exact integer computations, so they must agree everywhere.
        """
        problems: list[str] = []
        for channel in self.state.fabric.channels:
            expected = channel.column_occupancy()
            width = channel.width
            if HAVE_NUMPY:
                counts = _np.zeros(width, dtype=_np.int64)
                for track, segs in enumerate(channel.segmentation.tracks):
                    occ = channel._occ[track]
                    if not occ:
                        continue
                    for seg, (start, end) in enumerate(segs):
                        if occ >> seg & 1:
                            counts[start:end] += 1
                got = counts.tolist()
            else:
                got = [0] * width
                for track, segs in enumerate(channel.segmentation.tracks):
                    occ = channel._occ[track]
                    if not occ:
                        continue
                    for seg, (start, end) in enumerate(segs):
                        if occ >> seg & 1:
                            for col in range(start, end):
                                got[col] += 1
            if got != expected:
                problems.append(
                    f"array-coherence: ch{channel.index} column occupancy "
                    f"from bitmasks {got} != owner walk {expected}"
                )
        return problems

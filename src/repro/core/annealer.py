"""The paper's contribution: simultaneous place / global route / detail
route under a single simulated-annealing optimization.

The annealer manipulates *all* the design variables concurrently
(Section 3.1): every move perturbs the placement or a pinmap, rips up
the nets it touches, lets the fast incremental routers repair what they
can, updates the worst-case delay incrementally, and accepts or rejects
the whole cascade against ``Cost = Wg*G + Wd*D + Wt*T`` under the
adaptive Huang/Romeo/Sangiovanni-Vincentelli cooling schedule.

Intermediate layouts are deliberately *incomplete* — cells are always
legally placed but nets may be unrouted at any point; unroutability is
cost, not an error.  The run converges exactly the way the paper's
Figure 6 shows: hot = placement search, warm = global-routing
stabilization, cold = detailed-routing convergence.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from ..arch.presets import Architecture
from ..arch.technology import Technology
from ..netlist.netlist import Netlist
from ..obs import Instrumentation, RunTrace, build_manifest
from ..perf import RunProfile
from ..place.initial import clustered_placement, random_placement
from ..place.placement import Placement
from ..route.channel_router import DEFAULT_SEGMENT_WEIGHT
from ..route.incremental import IncrementalRouter
from ..lint.runtime import SanitizerError, check_all
from ..route.state import RoutingState
from ..timing.incremental import IncrementalTiming
from .cost import CostEvaluator, CostTerms, CostWeights, TermAccumulator
from .dynamics import DynamicsTrace, TemperatureSample
from .moves import MoveGenerator, PinmapMove
from .schedule import CoolingSchedule, ScheduleConfig
from .transaction import LayoutContext, apply_move, rollback


@dataclass
class AnnealerConfig:
    """Everything that parameterizes one simultaneous P&R run."""

    seed: int = 0
    attempts_per_cell: int = 8
    pinmap_probability: float = 0.15
    importance_global: float = 1.0
    importance_detail: float = 1.0
    importance_timing: float = 1.0
    segment_weight: float = DEFAULT_SEGMENT_WEIGHT
    initial: str = "random"  # or "clustered"
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    #: Acceptance band for the TimberWolf-style range limiter.
    target_acceptance: float = 0.44
    #: Hill-climbing clean-up rounds after the anneal freezes.
    greedy_rounds: int = 2
    #: Criticality-directed moves (the paper's "current work" speed
    #: direction): fraction of swap proposals drawn from the current
    #: near-zero-slack cells instead of uniformly.  0 disables.
    critical_bias: float = 0.0
    #: Collect per-phase timings and counters into ``AnnealResult.profile``.
    #: Never affects results: identical seeds give identical metrics
    #: with profiling on or off.
    profile: bool = False
    #: Repair fast path (dirty-channel iteration + negative-result
    #: caches + zero-net-move short circuit).  Bit-identical results
    #: either way; off exists for the golden determinism test and A/B
    #: benchmarking.
    fast_path: bool = True
    #: Runtime sanitizer: after every move transaction, cross-check
    #: rollback completeness, negative-cache coherence, and the full
    #: invariant audit (see :mod:`repro.lint.runtime`).  Slow but
    #: invisible: a sanitized run consumes no extra RNG and produces
    #: bit-identical metrics to an unsanitized run with the same seed.
    sanitize: bool = False
    #: Thin the full invariant audit to every N-th move when sanitizing
    #: (the cheap rollback digest and cache probes still run every move).
    sanitize_every: int = 1
    #: Structured event tracing (see :mod:`repro.obs`): per-stage cost
    #: terms, adaptive weights, move-type accept/reject counts, and
    #: repair/cache/timing metric deltas into ``AnnealResult.trace``.
    #: Never affects results: a traced run is bit-identical to an
    #: untraced run with the same seed.
    trace: bool = False
    #: With tracing on, emit a layout ``snapshot`` event (channel
    #: occupancy, per-net routes, critical-path attribution; see
    #: :mod:`repro.obs.snapshot`) every N temperatures, plus one final
    #: snapshot before ``run_end``.  0 disables.  Capture is a pure
    #: read — no RNG, no clock, no state mutation — so a snapshotted
    #: run is bit-identical to a plain run with the same seed.
    snapshot_every: int = 0

    def __post_init__(self) -> None:
        if self.attempts_per_cell <= 0:
            raise ValueError("attempts_per_cell must be positive")
        if self.initial not in ("random", "clustered"):
            raise ValueError(f"initial must be random|clustered, got {self.initial!r}")
        if not 0 <= self.critical_bias <= 1:
            raise ValueError(
                f"critical_bias must be in [0, 1], got {self.critical_bias}"
            )
        if self.sanitize_every < 1:
            raise ValueError(
                f"sanitize_every must be >= 1, got {self.sanitize_every}"
            )
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )


def fast_config(seed: int = 0) -> AnnealerConfig:
    """Reduced-effort preset for tests and quick benchmarks."""
    return AnnealerConfig(
        seed=seed,
        attempts_per_cell=4,
        initial="clustered",
        greedy_rounds=1,
        schedule=ScheduleConfig(lambda_=1.4, max_temperatures=60,
                                freeze_patience=2),
    )


def thorough_config(seed: int = 0) -> AnnealerConfig:
    """High-effort preset (closest to the paper's multi-hour runs)."""
    return AnnealerConfig(
        seed=seed,
        attempts_per_cell=14,
        schedule=ScheduleConfig(lambda_=0.5, max_temperatures=400),
    )


@dataclass
class AnnealResult:
    """Outcome of one simultaneous place-and-route run."""

    placement: Placement
    state: RoutingState
    timing: IncrementalTiming
    terms: CostTerms
    dynamics: DynamicsTrace
    moves_attempted: int
    moves_accepted: int
    temperatures: int
    wall_time_s: float
    #: Per-phase timings/counters; present only when profiling was on.
    profile: Optional[RunProfile] = None
    #: Structured event trace; present only when tracing was on.
    trace: Optional[RunTrace] = None

    @property
    def fully_routed(self) -> bool:
        """Whether every net is completely routed."""
        return self.state.is_complete()

    @property
    def worst_delay(self) -> float:
        """Worst-case critical-path delay (ns)."""
        return self.terms.worst_delay

    def metrics(self) -> dict[str, float]:
        """Summary metrics as a flat name -> value dict."""
        return {
            "worst_delay_ns": self.terms.worst_delay,
            "global_unrouted": self.terms.global_unrouted,
            "detail_unrouted": self.terms.detail_unrouted,
            "fully_routed": float(self.fully_routed),
            "moves_attempted": self.moves_attempted,
            "moves_accepted": self.moves_accepted,
            "temperatures": self.temperatures,
            "wall_time_s": self.wall_time_s,
            "total_antifuses": self.state.total_antifuses(),
        }


class SimultaneousAnnealer:
    """One-shot driver: construct, then :meth:`run`."""

    def __init__(
        self,
        netlist: Netlist,
        architecture: Architecture,
        config: Optional[AnnealerConfig] = None,
    ) -> None:
        self.netlist = netlist.freeze()
        self.architecture = architecture
        self.technology: Technology = architecture.technology
        self.config = config or AnnealerConfig()
        self.rng = random.Random(self.config.seed)

        # One shared hook point builds every requested observability
        # facility (--profile / --trace / --sanitize) together.
        self.instrumentation = Instrumentation.from_config(self.config)
        self.profiler = self.instrumentation.profiler
        self.tracer = self.instrumentation.tracer
        self.sanitizer = self.instrumentation.sanitizer
        metrics = self.instrumentation.metrics

        fabric = architecture.build()
        if self.config.initial == "clustered":
            placement = clustered_placement(netlist, fabric, self.rng)
        else:
            placement = random_placement(netlist, fabric, self.rng)
        state = RoutingState(placement)
        router = IncrementalRouter(
            state, self.config.segment_weight, fast_path=self.config.fast_path
        )
        router.metrics = metrics
        router.route_all_from_scratch()
        timing = IncrementalTiming(state, self.technology)
        timing.metrics = metrics
        self.ctx = LayoutContext(placement, state, router, timing,
                                 profiler=self.profiler, metrics=metrics)
        self.weights = CostWeights(
            self.config.importance_global,
            self.config.importance_detail,
            self.config.importance_timing,
        )
        self.evaluator = CostEvaluator(state, timing, self.weights)
        self.moves = MoveGenerator(
            placement, self.rng, self.config.pinmap_probability
        )
        self.schedule = CoolingSchedule(self.config.schedule)
        self.dynamics = DynamicsTrace()
        self._attempted = 0
        self._accepted = 0
        if self.sanitizer is not None:
            self._sanitizer_check(self.sanitizer.check_initial, self.ctx)

    def _sanitizer_check(self, check, *args) -> None:
        """Run one sanitizer check, tracing the violation before it raises."""
        try:
            check(*args)
        except SanitizerError as exc:
            tracer = self.tracer
            if tracer is not None:
                tracer.sanitizer_violation(exc.phase, exc.move, exc.problems)
            raise

    # ------------------------------------------------------------------
    # Pieces of the run
    # ------------------------------------------------------------------
    def _attempt(
        self, temperature: float, current: CostTerms
    ) -> tuple[bool, CostTerms, list[int]]:
        """Propose + apply + accept/reject one move.

        Returns (accepted, resulting terms, cells the move touched if
        accepted else an empty list).
        """
        move = self.moves.propose()
        if move is None:
            return False, current, []
        cells_touched = move.cells_involved(self.ctx.placement)
        self._attempted += 1
        sanitizer = self.sanitizer
        before = sanitizer.capture(self.ctx) if sanitizer is not None else None
        record = apply_move(self.ctx, move)
        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
        new_terms = self.evaluator.terms()
        delta = self.weights.scalar(new_terms) - self.weights.scalar(current)
        if prof is not None:
            prof.add_time("cost", perf_counter() - t0)
        if delta <= 0:
            accept = True
        elif temperature <= 0:
            accept = False
        else:
            exponent = -delta / temperature
            accept = exponent > -60 and self.rng.random() < math.exp(exponent)
        tracer = self.tracer
        if accept:
            self._accepted += 1
            if tracer is not None:
                tracer.count_move(
                    "pinmap" if isinstance(move, PinmapMove) else "swap", True
                )
            if sanitizer is not None:
                self._sanitizer_check(sanitizer.check_commit, self.ctx, move)
            return True, new_terms, cells_touched
        rollback(self.ctx, record)
        if tracer is not None:
            tracer.count_move(
                "pinmap" if isinstance(move, PinmapMove) else "swap", False
            )
        if sanitizer is not None:
            self._sanitizer_check(
                sanitizer.check_rollback, self.ctx, move, before
            )
        return False, current, []

    def _random_walk(self, moves: int) -> tuple[list[float], CostTerms]:
        """Accept-everything walk to seed T0 and the first weights.

        Term samples are collected first and the weights recalibrated
        from their means, then the walk's scalar costs are computed with
        the *calibrated* weights so T0 lives on the same scale as the
        anneal it starts.
        """
        samples: list[CostTerms] = []
        accumulator = TermAccumulator()
        current = self.evaluator.terms()
        for _ in range(moves):
            accepted, current, _ = self._attempt(float("inf"), current)
            accumulator.add(current)
            samples.append(current)
        self.weights.recalibrate(accumulator.mean_terms())
        return [self.weights.scalar(terms) for terms in samples], current

    def _greedy_cleanup(self, current: CostTerms) -> CostTerms:
        """Zero-temperature improvement rounds after the freeze."""
        attempts = self.config.attempts_per_cell * self.netlist.num_cells
        tracer = self.tracer
        for round_index in range(self.config.greedy_rounds):
            accepted_here = 0
            for _ in range(attempts):
                accepted, current, _ = self._attempt(0.0, current)
                if accepted:
                    accepted_here += 1
            if tracer is not None:
                tracer.emit(
                    "greedy", round=round_index, attempts=attempts,
                    accepted=accepted_here,
                )
            if not accepted_here:
                break
        return current

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self) -> AnnealResult:
        """Execute to completion and return the result."""
        started = time.perf_counter()
        num_cells = self.netlist.num_cells
        num_nets = max(1, self.netlist.num_nets)
        attempts_per_temp = self.config.attempts_per_cell * num_cells

        tracer = self.tracer
        if tracer is not None:
            tracer.run_start(
                build_manifest(self.config, self.netlist, flow="simultaneous")
            )

        walk_costs, current = self._random_walk(max(24, num_cells // 2))
        temperature = self.schedule.start(walk_costs)
        stage_index = 0

        while not self.schedule.frozen:
            if self.config.critical_bias > 0:
                self._refocus_moves()
            accumulator = TermAccumulator()
            costs: list[float] = []
            perturbed_cells: set[int] = set()
            accepted_here = 0
            for _ in range(attempts_per_temp):
                accepted, current, cells_touched = self._attempt(
                    temperature, current
                )
                if accepted:
                    accepted_here += 1
                    perturbed_cells.update(cells_touched)
                accumulator.add(current)
                costs.append(self.weights.scalar(current))
            acceptance = accepted_here / attempts_per_temp
            sample = TemperatureSample(
                temperature=temperature,
                attempts=attempts_per_temp,
                accepted=accepted_here,
                cells_perturbed_frac=len(perturbed_cells) / num_cells,
                global_unrouted_frac=current.global_unrouted / num_nets,
                unrouted_frac=current.detail_unrouted / num_nets,
                worst_delay=current.worst_delay,
                mean_cost=(sum(costs) / len(costs)) if costs else 0.0,
            )
            self.dynamics.record(sample)
            self.weights.recalibrate(accumulator.mean_terms())
            current = self.evaluator.terms()  # same raw terms, fresh object
            self._adjust_window(acceptance)
            self.schedule.observe(acceptance, costs)
            if tracer is not None:
                # Stage-end terms under the *post-recalibration* weights:
                # the last stage's (terms, weights) pair reconstructs the
                # run's final cost bit-exactly (greedy never recalibrates).
                tracer.stage(
                    index=stage_index,
                    **sample.as_dict(),
                    terms={"G": current.global_unrouted,
                           "D": current.detail_unrouted,
                           "T": current.worst_delay},
                    weights={"wg": self.weights.wg,
                             "wd": self.weights.wd,
                             "wt": self.weights.wt},
                    window=self.moves.window,
                    calm_streak=self.schedule.calm_streak,
                )
                every = self.instrumentation.snapshot_every
                if every > 0 and stage_index % every == 0:
                    # Imported lazily: repro.obs.snapshot pulls the
                    # route/timing layers, which must not load as a side
                    # effect of importing repro.core.
                    from ..obs.snapshot import capture_snapshot

                    tracer.snapshot(
                        capture_snapshot(
                            self.ctx.state, self.ctx.timing,
                            label=f"stage {stage_index}",
                        ),
                        stage=stage_index,
                    )
            temperature = self.schedule.next_temperature(costs)
            stage_index += 1

        current = self._greedy_cleanup(current)

        wall_time = time.perf_counter() - started
        profile = None
        if self.profiler is not None:
            profile = self.profiler.finish(
                wall_time, self._attempted, self._accepted
            )
        trace = None
        if tracer is not None:
            if self.instrumentation.snapshot_every > 0:
                from ..obs.snapshot import capture_snapshot

                tracer.snapshot(
                    capture_snapshot(
                        self.ctx.state, self.ctx.timing, label="final"
                    ),
                )
            tracer.run_end(
                moves_attempted=self._attempted,
                moves_accepted=self._accepted,
                temperatures=self.schedule.temperatures_done,
                terms={"G": current.global_unrouted,
                       "D": current.detail_unrouted,
                       "T": current.worst_delay},
                weights={"wg": self.weights.wg,
                         "wd": self.weights.wd,
                         "wt": self.weights.wt},
                final_cost=self.weights.scalar(current),
                state=self.ctx.state.summary(),
            )
            trace = tracer.finish()
        return AnnealResult(
            placement=self.ctx.placement,
            state=self.ctx.state,
            timing=self.ctx.timing,
            terms=current,
            dynamics=self.dynamics,
            moves_attempted=self._attempted,
            moves_accepted=self._accepted,
            temperatures=self.schedule.temperatures_done,
            wall_time_s=wall_time,
            profile=profile,
            trace=trace,
        )

    def _refocus_moves(self) -> None:
        """Point the move generator at the current near-critical cells.

        Recomputed once per temperature: cells whose slack is within 10%
        of the worst delay of zero become preferred swap candidates with
        probability ``critical_bias``.
        """
        from ..timing.analyzer import TimingReport
        from ..timing.slack import compute_slacks

        timing = self.ctx.timing
        report = TimingReport(
            worst_delay=timing.worst_delay(),
            arrival=list(timing.arrival),
            boundary_in=dict(timing.boundary_in),
            critical_path=[],
            critical_endpoint=None,
        )
        slacks = compute_slacks(self.ctx.state, self.technology, report)
        threshold = 0.10 * max(report.worst_delay, 1e-9)
        focus = [
            index for index, slack in enumerate(slacks) if slack <= threshold
        ]
        self.moves.set_focus(focus, self.config.critical_bias)

    def _adjust_window(self, acceptance: float) -> None:
        """Range limiting: shrink the swap window toward the acceptance target."""
        target = self.config.target_acceptance
        if acceptance > target + 0.1:
            self.moves.set_window(self.moves.window * 0.9)
        elif acceptance < target - 0.1:
            self.moves.set_window(self.moves.window * 1.1)

    # ------------------------------------------------------------------
    # Audits (tests call this after runs)
    # ------------------------------------------------------------------
    def audit(self) -> list[str]:
        """Invariant check; returns problems (empty = clean).

        Delegates to :func:`repro.lint.runtime.check_all`, the single
        consolidated entry point over routing bookkeeping, electrical
        verification, and incremental-timing drift.
        """
        return check_all(self.ctx.state, self.ctx.timing)

"""The paper's contribution: simultaneous place / global route / detail
route under a single simulated-annealing optimization.

The annealer manipulates *all* the design variables concurrently
(Section 3.1): every move perturbs the placement or a pinmap, rips up
the nets it touches, lets the fast incremental routers repair what they
can, updates the worst-case delay incrementally, and accepts or rejects
the whole cascade against ``Cost = Wg*G + Wd*D + Wt*T`` under the
adaptive Huang/Romeo/Sangiovanni-Vincentelli cooling schedule.

Intermediate layouts are deliberately *incomplete* — cells are always
legally placed but nets may be unrouted at any point; unroutability is
cost, not an error.  The run converges exactly the way the paper's
Figure 6 shows: hot = placement search, warm = global-routing
stabilization, cold = detailed-routing convergence.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Optional

from ..arch.presets import Architecture
from ..arch.technology import Technology
from ..netlist.netlist import Netlist
from ..obs import Instrumentation, RunTrace, build_manifest
from ..perf import RunProfile
from ..place.initial import clustered_placement, random_placement
from ..place.placement import Placement
from ..route.channel_router import DEFAULT_SEGMENT_WEIGHT
from ..route.incremental import IncrementalRouter
from ..lint.runtime import SanitizerError, check_all
from ..route.state import RoutingState
from ..timing.incremental import IncrementalTiming
from .cost import CostEvaluator, CostTerms, CostWeights, TermAccumulator
from .dynamics import DynamicsTrace, TemperatureSample
from .moves import MoveGenerator, PinmapMove
from .schedule import CoolingSchedule, ScheduleConfig
from .transaction import LayoutContext, apply_move, rollback


@dataclass
class AnnealerConfig:
    """Everything that parameterizes one simultaneous P&R run."""

    seed: int = 0
    attempts_per_cell: int = 8
    pinmap_probability: float = 0.15
    importance_global: float = 1.0
    importance_detail: float = 1.0
    importance_timing: float = 1.0
    segment_weight: float = DEFAULT_SEGMENT_WEIGHT
    initial: str = "random"  # or "clustered"
    schedule: ScheduleConfig = field(default_factory=ScheduleConfig)
    #: Acceptance band for the TimberWolf-style range limiter.
    target_acceptance: float = 0.44
    #: Hill-climbing clean-up rounds after the anneal freezes.
    greedy_rounds: int = 2
    #: Criticality-directed moves (the paper's "current work" speed
    #: direction): fraction of swap proposals drawn from the current
    #: near-zero-slack cells instead of uniformly.  0 disables.
    critical_bias: float = 0.0
    #: Collect per-phase timings and counters into ``AnnealResult.profile``.
    #: Never affects results: identical seeds give identical metrics
    #: with profiling on or off.
    profile: bool = False
    #: Repair fast path (dirty-channel iteration + negative-result
    #: caches + zero-net-move short circuit).  Bit-identical results
    #: either way; off exists for the golden determinism test and A/B
    #: benchmarking.
    fast_path: bool = True
    #: Flat-array move core (see :mod:`repro.core.arraystate`): journal
    #: phantom-restore keyed on per-net route versions, geometry restore
    #: by assignment, and delay-cache reuse across moves.  Results are
    #: bit-identical with the flag off (the legacy object-graph core);
    #: legacy exists for the parity smoke test and A/B benchmarking.
    array_core: bool = True
    #: Runtime sanitizer: after every move transaction, cross-check
    #: rollback completeness, negative-cache coherence, and the full
    #: invariant audit (see :mod:`repro.lint.runtime`).  Slow but
    #: invisible: a sanitized run consumes no extra RNG and produces
    #: bit-identical metrics to an unsanitized run with the same seed.
    sanitize: bool = False
    #: Thin the full invariant audit to every N-th move when sanitizing
    #: (the cheap rollback digest and cache probes still run every move).
    sanitize_every: int = 1
    #: Structured event tracing (see :mod:`repro.obs`): per-stage cost
    #: terms, adaptive weights, move-type accept/reject counts, and
    #: repair/cache/timing metric deltas into ``AnnealResult.trace``.
    #: Never affects results: a traced run is bit-identical to an
    #: untraced run with the same seed.
    trace: bool = False
    #: With tracing on, also append every event to this file as it is
    #: emitted (same serialization as the final JSONL trace), so a live
    #: watcher (``repro-fpga watch``) can tail-follow the run.  The
    #: stream is flushed per event at stage boundaries — never from the
    #: per-move hot path — and a streamed run stays bit-identical.
    trace_stream: Optional[str] = None
    #: Live heartbeat sidecar (see :mod:`repro.obs.live`): rewrite this
    #: file atomically with wall-clock telemetry (pid, counters,
    #: acceptance, moves/sec, ETA, last checkpoint) at stage boundaries
    #: and at least every ``heartbeat_min_interval_s`` seconds.  The
    #: telemetry is deliberately kept *out* of the deterministic trace
    #: (the ledger's VOLATILE_FIELDS discipline); the writer reads only
    #: monotonic clocks, so a heartbeating run is bit-identical to a
    #: plain run.  None disables.
    heartbeat_path: Optional[str] = None
    #: Heartbeat rewrite throttle in seconds (forced beats — phase
    #: transitions and the final status — ignore it).
    heartbeat_min_interval_s: float = 2.0
    #: With tracing on, emit a layout ``snapshot`` event (channel
    #: occupancy, per-net routes, critical-path attribution; see
    #: :mod:`repro.obs.snapshot`) every N temperatures, plus one final
    #: snapshot before ``run_end``.  0 disables.  Capture is a pure
    #: read — no RNG, no clock, no state mutation — so a snapshotted
    #: run is bit-identical to a plain run with the same seed.
    snapshot_every: int = 0
    #: Write a digest-protected, resumable checkpoint (see
    #: :mod:`repro.resilience`) to this path: every ``checkpoint_every``
    #: stages and always once at the end of the run (completed or
    #: interrupted).  Writing is a pure read of annealer state — no RNG,
    #: no clock — so a checkpointed run is bit-identical to a plain run.
    checkpoint_path: Optional[str] = None
    #: Periodic checkpoint cadence in temperature stages; 0 means only
    #: the final checkpoint is written.  Requires ``checkpoint_path``.
    checkpoint_every: int = 0
    #: Stop cleanly at the next stage boundary once this much wall-clock
    #: time has elapsed (0 = unlimited).  Budgets do not change the
    #: trajectory up to the stop point: a resumed run is bit-identical
    #: to one that never stopped.
    max_seconds: float = 0.0
    #: Stop before running global stage index N (0 = unlimited).  The
    #: index is global, so a resumed run continues the original count.
    max_stages: int = 0
    #: Stop at the next stage boundary after N total move attempts
    #: (0 = unlimited); like ``max_stages``, counted across resumes.
    max_moves: int = 0
    #: Install SIGINT/SIGTERM handlers for the duration of :meth:`run`
    #: so the first signal stops the run cleanly at a stage boundary
    #: (a second SIGINT raises KeyboardInterrupt as usual).  Opt-in so
    #: library embedders keep their own handlers.
    handle_signals: bool = False

    def __post_init__(self) -> None:
        if self.attempts_per_cell <= 0:
            raise ValueError("attempts_per_cell must be positive")
        if self.initial not in ("random", "clustered"):
            raise ValueError(f"initial must be random|clustered, got {self.initial!r}")
        if not 0 <= self.critical_bias <= 1:
            raise ValueError(
                f"critical_bias must be in [0, 1], got {self.critical_bias}"
            )
        if self.sanitize_every < 1:
            raise ValueError(
                f"sanitize_every must be >= 1, got {self.sanitize_every}"
            )
        if self.snapshot_every < 0:
            raise ValueError(
                f"snapshot_every must be >= 0, got {self.snapshot_every}"
            )
        if self.checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )
        if self.checkpoint_every > 0 and not self.checkpoint_path:
            raise ValueError("checkpoint_every requires checkpoint_path")
        if self.max_seconds < 0 or self.max_stages < 0 or self.max_moves < 0:
            raise ValueError("run budgets must be >= 0 (0 = unlimited)")
        if self.trace_stream is not None and not self.trace:
            raise ValueError("trace_stream requires trace=True")
        if self.heartbeat_min_interval_s <= 0:
            raise ValueError(
                f"heartbeat_min_interval_s must be > 0, got "
                f"{self.heartbeat_min_interval_s}"
            )


def fast_config(seed: int = 0) -> AnnealerConfig:
    """Reduced-effort preset for tests and quick benchmarks."""
    return AnnealerConfig(
        seed=seed,
        attempts_per_cell=4,
        initial="clustered",
        greedy_rounds=1,
        schedule=ScheduleConfig(lambda_=1.4, max_temperatures=60,
                                freeze_patience=2),
    )


def thorough_config(seed: int = 0) -> AnnealerConfig:
    """High-effort preset (closest to the paper's multi-hour runs)."""
    return AnnealerConfig(
        seed=seed,
        attempts_per_cell=14,
        schedule=ScheduleConfig(lambda_=0.5, max_temperatures=400),
    )


@dataclass
class AnnealResult:
    """Outcome of one simultaneous place-and-route run."""

    placement: Placement
    state: RoutingState
    timing: IncrementalTiming
    terms: CostTerms
    dynamics: DynamicsTrace
    moves_attempted: int
    moves_accepted: int
    temperatures: int
    wall_time_s: float
    #: Per-phase timings/counters; present only when profiling was on.
    profile: Optional[RunProfile] = None
    #: Structured event trace; present only when tracing was on.
    trace: Optional[RunTrace] = None
    #: Why the run stopped early ("signal SIGINT", "stage budget (40)",
    #: ...), or None when the schedule ran to completion.  Interrupted
    #: results hold the *best-so-far* layout, not the last one visited.
    interrupted: Optional[str] = None
    #: Path of the last checkpoint written, when checkpointing was on;
    #: resume from it to continue the interrupted trajectory.
    checkpoint_path: Optional[str] = None

    @property
    def fully_routed(self) -> bool:
        """Whether every net is completely routed."""
        return self.state.is_complete()

    @property
    def worst_delay(self) -> float:
        """Worst-case critical-path delay (ns)."""
        return self.terms.worst_delay

    def metrics(self) -> dict[str, float]:
        """Summary metrics as a flat name -> value dict."""
        return {
            "worst_delay_ns": self.terms.worst_delay,
            "global_unrouted": self.terms.global_unrouted,
            "detail_unrouted": self.terms.detail_unrouted,
            "fully_routed": float(self.fully_routed),
            "moves_attempted": self.moves_attempted,
            "moves_accepted": self.moves_accepted,
            "temperatures": self.temperatures,
            "wall_time_s": self.wall_time_s,
            "total_antifuses": self.state.total_antifuses(),
        }


class SimultaneousAnnealer:
    """One-shot driver: construct, then :meth:`run`."""

    def __init__(
        self,
        netlist: Netlist,
        architecture: Architecture,
        config: Optional[AnnealerConfig] = None,
        resume_from: Optional[dict] = None,
    ) -> None:
        self.netlist = netlist.freeze()
        self.architecture = architecture
        self.technology: Technology = architecture.technology
        self.config = config or AnnealerConfig()
        self.rng = random.Random(self.config.seed)

        # One shared hook point builds every requested observability
        # facility (--profile / --trace / --sanitize) together.
        self.instrumentation = Instrumentation.from_config(self.config)
        self.profiler = self.instrumentation.profiler
        self.tracer = self.instrumentation.tracer
        self.sanitizer = self.instrumentation.sanitizer
        metrics = self.instrumentation.metrics

        fabric = architecture.build()
        if self.config.initial == "clustered":
            placement = clustered_placement(netlist, fabric, self.rng)
        else:
            placement = random_placement(netlist, fabric, self.rng)
        state = RoutingState(placement)
        router = IncrementalRouter(
            state, self.config.segment_weight, fast_path=self.config.fast_path
        )
        router.metrics = metrics
        router.route_all_from_scratch()
        timing = IncrementalTiming(state, self.technology)
        timing.metrics = metrics
        if self.config.array_core:
            from .arraystate import ArrayState

            ArrayState.attach(state, timing)
        self.ctx = LayoutContext(placement, state, router, timing,
                                 profiler=self.profiler, metrics=metrics)
        self.weights = CostWeights(
            self.config.importance_global,
            self.config.importance_detail,
            self.config.importance_timing,
        )
        self.evaluator = CostEvaluator(state, timing, self.weights)
        self.moves = MoveGenerator(
            placement, self.rng, self.config.pinmap_probability
        )
        self.schedule = CoolingSchedule(self.config.schedule)
        self.dynamics = DynamicsTrace()
        self._attempted = 0
        self._accepted = 0
        # Trajectory cursor for checkpoint/resume (see
        # :mod:`repro.resilience`): which phase the run is in, the
        # global stage index, and the greedy round already completed.
        self._phase = "walk"
        self._stage_index = 0
        self._greedy_round = 0
        self._resumed = False
        self._last_checkpoint: Optional[str] = None
        # Heartbeat telemetry cursors (wall-clock side only — never fed
        # back into the anneal): when this run() started, and the last
        # completed stage's acceptance for mid-stage beats.
        self._run_started: float = 0.0
        self._last_acceptance: Optional[float] = None
        # Best-so-far tracking: noted at stage boundaries with a pure
        # structural capture (no RNG, no clock), so plain runs remain
        # bit-identical.  Interrupted runs return this layout.
        self.best_snapshot = None
        self.best_terms: Optional[CostTerms] = None
        self._best_key: Optional[tuple] = None
        # Imported lazily: keeps repro.core importable without loading
        # the resilience package (mirrors the snapshot imports below).
        from ..resilience.interrupt import InterruptController

        self.interrupt = InterruptController(
            max_seconds=self.config.max_seconds,
            max_stages=self.config.max_stages,
            max_moves=self.config.max_moves,
            handle_signals=self.config.handle_signals,
        )
        if resume_from is not None:
            self._restore(resume_from)
        if self.sanitizer is not None:
            self._sanitizer_check(self.sanitizer.check_initial, self.ctx)

    @classmethod
    def resume(
        cls,
        netlist: Netlist,
        architecture: Architecture,
        checkpoint,
        config: Optional[AnnealerConfig] = None,
    ) -> "SimultaneousAnnealer":
        """Rebuild an annealer mid-trajectory from a checkpoint.

        ``checkpoint`` is a path (read and digest-verified) or an
        already-validated payload dict.  ``config`` defaults to the
        configuration recorded in the checkpoint; a config passed
        explicitly may change budgets, checkpoint cadence, and
        instrumentation, but every trajectory-shaping knob must match
        the writing run (enforced by the config digest) — so calling
        :meth:`run` afterwards continues exactly the interrupted
        trajectory: the combined runs are bit-identical to one that
        was never interrupted.

        Mutates: ``netlist`` — frozen on first use while the restored
        layout is rebuilt (idempotent, same as the normal constructor).
        """
        from ..resilience.checkpoint import config_from_payload, read_checkpoint

        payload = (
            checkpoint
            if isinstance(checkpoint, dict)
            else read_checkpoint(checkpoint)
        )
        if config is None:
            config = config_from_payload(payload)
        return cls(netlist, architecture, config, resume_from=payload)

    def _sanitizer_check(self, check, *args) -> None:
        """Run one sanitizer check, tracing the violation before it raises."""
        try:
            check(*args)
        except SanitizerError as exc:
            tracer = self.tracer
            if tracer is not None:
                tracer.sanitizer_violation(exc.phase, exc.move, exc.problems)
            raise

    # ------------------------------------------------------------------
    # Checkpoint / resume / best-so-far
    # ------------------------------------------------------------------
    def checkpoint_payload(self) -> dict:
        """The complete trajectory state, as a checkpoint payload dict.

        A pure read of annealer state — building it consumes no RNG and
        reads no clock, so writing checkpoints never perturbs the run.
        """
        import dataclasses

        from ..flows.layout_io import layout_to_dict
        from ..resilience.checkpoint import (
            CHECKPOINT_KIND,
            CHECKPOINT_SCHEMA_VERSION,
            encode_rng_state,
            resume_digest,
        )

        terms = self.evaluator.terms()
        best = None
        if self.best_snapshot is not None and self.best_terms is not None:
            best = {
                "layout": self.best_snapshot.to_layout_dict(self.netlist),
                "terms": {"G": self.best_terms.global_unrouted,
                          "D": self.best_terms.detail_unrouted,
                          "T": self.best_terms.worst_delay},
            }
        return {
            "format": CHECKPOINT_SCHEMA_VERSION,
            "kind": CHECKPOINT_KIND,
            "circuit": self.netlist.name,
            "seed": self.config.seed,
            "config_digest": resume_digest(self.config),
            "config": dataclasses.asdict(self.config),
            "phase": self._phase,
            "stage_index": self._stage_index,
            "greedy_round": self._greedy_round,
            "moves_attempted": self._attempted,
            "moves_accepted": self._accepted,
            "rng_state": encode_rng_state(self.rng.getstate()),
            "schedule": self.schedule.export_state(),
            "weights": {"wg": self.weights.wg, "wd": self.weights.wd,
                        "wt": self.weights.wt},
            "window": self.moves.window,
            "terms": {"G": terms.global_unrouted,
                      "D": terms.detail_unrouted,
                      "T": terms.worst_delay},
            "layout": layout_to_dict(self.ctx.placement, self.ctx.state),
            "timing": self.ctx.timing.export_state(),
            # Flat-array core side-state (schema-compatible addition:
            # validate_payload tolerates unknown sections, so pre-array
            # checkpoints restore fine without it and array checkpoints
            # restore fine on legacy-core runs, which ignore it).
            "arrays": {
                "route_version": list(self.ctx.state.route_version),
                "delay_cache_version": list(self.ctx.timing._cache_version),
            },
            "dynamics": [
                dataclasses.asdict(sample) for sample in self.dynamics.samples
            ],
            "best": best,
        }

    def _restore(self, payload: dict) -> None:
        """Adopt a validated checkpoint payload into this annealer.

        Mutates: every layer — placement, routing state, timing arrays,
        RNG, schedule, weights, window, dynamics, counters, and the
        phase cursor.  Raises CheckpointError when the payload does not
        fit this netlist/config.
        """
        from ..resilience.checkpoint import (
            CheckpointError,
            LayoutSnapshot,
            decode_rng_state,
            validate_payload,
        )

        validate_payload(payload, circuit=self.netlist.name,
                         config=self.config)
        snapshot = LayoutSnapshot.from_layout_dict(
            self.netlist, payload["layout"]
        )
        snapshot.restore(self.ctx.placement, self.ctx.state)
        try:
            self.ctx.timing.adopt_state(payload["timing"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint timing record is invalid: {exc}"
            ) from exc
        arrays_record = payload.get("arrays")
        if arrays_record is not None:
            # Adopt the writing run's version counters verbatim so the
            # resumed trajectory's version comparisons — and hence its
            # fast-path decisions — match an uninterrupted run exactly.
            # Checkpoints without the section (pre-array writers) fall
            # back to adopt_state's revalidation, which is equivalent:
            # every non-None cache entry in a live run is version-valid.
            try:
                route_version = [int(v) for v in arrays_record["route_version"]]
                cache_version = [
                    int(v) for v in arrays_record["delay_cache_version"]
                ]
                if len(route_version) != len(self.ctx.state.route_version):
                    raise ValueError(
                        f"route_version has {len(route_version)} nets, "
                        f"expected {len(self.ctx.state.route_version)}"
                    )
                if len(cache_version) != len(self.ctx.timing._cache_version):
                    raise ValueError(
                        f"delay_cache_version has {len(cache_version)} nets, "
                        f"expected {len(self.ctx.timing._cache_version)}"
                    )
                from array import array

                self.ctx.state.route_version[:] = array("Q", route_version)
                self.ctx.timing._cache_version[:] = array("Q", cache_version)
            except (KeyError, TypeError, ValueError, OverflowError) as exc:
                raise CheckpointError(
                    f"checkpoint arrays record is invalid: {exc}"
                ) from exc
        self.rng.setstate(decode_rng_state(payload["rng_state"]))
        try:
            self.schedule.adopt_state(payload["schedule"])
            weights = payload["weights"]
            self.weights.wg = float(weights["wg"])
            self.weights.wd = float(weights["wd"])
            self.weights.wt = float(weights["wt"])
            self.moves.set_window(float(payload["window"]))
            for record in payload["dynamics"]:
                self.dynamics.record(TemperatureSample(**record))
            self._attempted = int(payload["moves_attempted"])
            self._accepted = int(payload["moves_accepted"])
            self._phase = payload["phase"]
            self._stage_index = int(payload["stage_index"])
            self._greedy_round = int(payload["greedy_round"])
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint trajectory record is invalid: {exc}"
            ) from exc
        best = payload.get("best")
        if best is not None:
            try:
                self.best_snapshot = LayoutSnapshot.from_layout_dict(
                    self.netlist, best["layout"]
                )
                record = best["terms"]
                self.best_terms = CostTerms(
                    float(record["G"]), float(record["D"]), float(record["T"])
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise CheckpointError(
                    f"checkpoint best-layout record is invalid: {exc}"
                ) from exc
            self._best_key = (
                self.best_terms.global_unrouted
                + self.best_terms.detail_unrouted,
                self.best_terms.worst_delay,
            )
        self._resumed = True

    def _note_best(self, current: CostTerms) -> None:
        """Keep the best layout seen at any stage boundary.

        Better means strictly fewer unrouted nets, with worst-case
        delay as the tie-break — lexicographic on ``(G + D, T)``.  The
        capture is a pure structural read, so plain runs with and
        without an eventual interruption walk identical trajectories.
        """
        key = (
            current.global_unrouted + current.detail_unrouted,
            current.worst_delay,
        )
        if self._best_key is not None and not key < self._best_key:
            return
        from ..resilience.checkpoint import LayoutSnapshot

        self.best_snapshot = LayoutSnapshot.capture(
            self.ctx.placement, self.ctx.state
        )
        self.best_terms = current
        self._best_key = key

    def _write_checkpoint(self, path) -> None:
        """Write one atomic, digest-protected checkpoint now."""
        from ..resilience.checkpoint import write_checkpoint

        digest = write_checkpoint(self.checkpoint_payload(), path)
        self._last_checkpoint = str(path)
        tracer = self.tracer
        if tracer is not None:
            tracer.emit(
                "checkpoint", stage=self._stage_index, phase=self._phase,
                path=str(path), sha256=digest,
            )

    def _checkpoint_if_due(self) -> None:
        """Periodic checkpoint at the cadence the config asked for."""
        every = self.instrumentation.checkpoint_every
        path = self.instrumentation.checkpoint_path
        if every > 0 and path is not None and self._stage_index % every == 0:
            self._write_checkpoint(path)

    def _beat(
        self,
        current: CostTerms,
        status: str = "running",
        force: bool = False,
        acceptance: Optional[float] = None,
    ) -> None:
        """Write one heartbeat sidecar update, if one is configured.

        Telemetry assembly is a pure read of already-computed state
        plus the monotonic clock — no RNG, no wall-clock — so the
        anneal trajectory is untouched (the determinism golden test
        and the bench bit-identity gate both pin this).
        """
        hb = self.instrumentation.heartbeat
        if hb is None or not (force or hb.due()):
            return
        elapsed = time.perf_counter() - self._run_started
        budget = self.config.schedule.max_temperatures
        done = self.schedule.temperatures_done
        eta = None
        if status == "running" and self._phase == "anneal" \
                and done > 0 and budget > done and elapsed > 0:
            # Budget-based upper bound: the adaptive schedule usually
            # freezes earlier, so this is a worst-case remaining time.
            eta = round(elapsed / done * (budget - done), 1)
        best = None
        if self.best_terms is not None:
            best = {"G": self.best_terms.global_unrouted,
                    "D": self.best_terms.detail_unrouted,
                    "T": self.best_terms.worst_delay}
        if acceptance is None:
            acceptance = self._last_acceptance
        hb.beat({
            "flow": "simultaneous",
            "design": self.netlist.name,
            "seed": self.config.seed,
            "status": status,
            "phase": self._phase,
            "stage": self._stage_index,
            "stage_budget": budget,
            "moves_attempted": self._attempted,
            "moves_accepted": self._accepted,
            "acceptance": (
                round(acceptance, 4) if acceptance is not None else None
            ),
            "terms": {"G": current.global_unrouted,
                      "D": current.detail_unrouted,
                      "T": current.worst_delay},
            "cost": self.weights.scalar(current),
            "best": best,
            "elapsed_s": round(elapsed, 3),
            "moves_per_sec": (
                round(self._attempted / elapsed, 1) if elapsed > 0 else None
            ),
            "eta_s": eta,
            "last_checkpoint": self._last_checkpoint,
            "trace": self.config.trace_stream,
        }, force=True)

    def _should_stop(self, started: float) -> Optional[str]:
        """Poll the interrupt controller with this run's counters."""
        return self.interrupt.should_stop(
            self._stage_index, self._attempted, time.perf_counter() - started
        )

    # ------------------------------------------------------------------
    # Pieces of the run
    # ------------------------------------------------------------------
    def _attempt(
        self, temperature: float, current: CostTerms
    ) -> tuple[bool, CostTerms, list[int]]:
        """Propose + apply + accept/reject one move.

        Returns (accepted, resulting terms, cells the move touched if
        accepted else an empty list).
        """
        move = self.moves.propose()
        if move is None:
            return False, current, []
        cells_touched = move.cells_involved(self.ctx.placement)
        self._attempted += 1
        sanitizer = self.sanitizer
        before = sanitizer.capture(self.ctx) if sanitizer is not None else None
        record = apply_move(self.ctx, move)
        prof = self.profiler
        if prof is not None:
            t0 = perf_counter()
        new_terms = self.evaluator.terms()
        delta = self.weights.scalar(new_terms) - self.weights.scalar(current)
        if prof is not None:
            prof.add_time("cost", perf_counter() - t0)
        if delta <= 0:
            accept = True
        elif temperature <= 0:
            accept = False
        else:
            exponent = -delta / temperature
            accept = exponent > -60 and self.rng.random() < math.exp(exponent)
        tracer = self.tracer
        if accept:
            self._accepted += 1
            if tracer is not None:
                tracer.count_move(
                    "pinmap" if isinstance(move, PinmapMove) else "swap", True
                )
            if sanitizer is not None:
                self._sanitizer_check(sanitizer.check_commit, self.ctx, move)
            return True, new_terms, cells_touched
        rollback(self.ctx, record)
        if tracer is not None:
            tracer.count_move(
                "pinmap" if isinstance(move, PinmapMove) else "swap", False
            )
        if sanitizer is not None:
            self._sanitizer_check(
                sanitizer.check_rollback, self.ctx, move, before
            )
        return False, current, []

    def _random_walk(self, moves: int) -> tuple[list[float], CostTerms]:
        """Accept-everything walk to seed T0 and the first weights.

        Term samples are collected first and the weights recalibrated
        from their means, then the walk's scalar costs are computed with
        the *calibrated* weights so T0 lives on the same scale as the
        anneal it starts.
        """
        samples: list[CostTerms] = []
        accumulator = TermAccumulator()
        current = self.evaluator.terms()
        for _ in range(moves):
            accepted, current, _ = self._attempt(float("inf"), current)
            accumulator.add(current)
            samples.append(current)
        self.weights.recalibrate(accumulator.mean_terms())
        return [self.weights.scalar(terms) for terms in samples], current

    def _greedy_cleanup(
        self, current: CostTerms, started: float
    ) -> tuple[CostTerms, Optional[str]]:
        """Zero-temperature improvement rounds after the freeze.

        Resumes from ``self._greedy_round`` (nonzero only when restored
        from a greedy-phase checkpoint) and polls the interrupt
        controller between rounds; returns the terms plus the stop
        reason (None when the rounds ran to completion).
        """
        attempts = self.config.attempts_per_cell * self.netlist.num_cells
        tracer = self.tracer
        round_index = self._greedy_round
        while round_index < self.config.greedy_rounds:
            stop_reason = self._should_stop(started)
            if stop_reason is not None:
                return current, stop_reason
            accepted_here = 0
            for _ in range(attempts):
                accepted, current, _ = self._attempt(0.0, current)
                if accepted:
                    accepted_here += 1
            if tracer is not None:
                tracer.emit(
                    "greedy", round=round_index, attempts=attempts,
                    accepted=accepted_here,
                )
            round_index += 1
            self._greedy_round = round_index
            self._note_best(current)
            self._beat(current, acceptance=accepted_here / attempts)
            if not accepted_here:
                break
            if round_index < self.config.greedy_rounds:
                # Periodic checkpoint only when another round will run:
                # the early-exit decision above already happened, so a
                # resume from this checkpoint repeats exactly the rounds
                # the uninterrupted run would have run.
                every = self.instrumentation.checkpoint_every
                path = self.instrumentation.checkpoint_path
                if every > 0 and path is not None:
                    self._write_checkpoint(path)
        return current, None

    # ------------------------------------------------------------------
    # The run
    # ------------------------------------------------------------------
    def run(self) -> AnnealResult:
        """Execute to completion — or to the first budget/signal stop —
        and return the result.

        Interrupted runs stop at a stage boundary, write a final
        checkpoint (when one was configured), and return the
        best-so-far layout with ``result.interrupted`` set; completed
        runs return the final layout exactly as before this machinery
        existed.
        """
        started = time.perf_counter()
        self._run_started = started
        num_cells = self.netlist.num_cells

        tracer = self.tracer
        if tracer is not None:
            extra = None
            if self._resumed:
                extra = {"resumed_from_stage": self._stage_index,
                         "resumed_phase": self._phase}
            tracer.run_start(
                build_manifest(self.config, self.netlist, flow="simultaneous",
                               extra=extra)
            )

        stop_reason: Optional[str] = None
        with self.interrupt:
            if self._resumed:
                current = self.evaluator.terms()
            else:
                walk_costs, current = self._random_walk(max(24, num_cells // 2))
                self.schedule.start(walk_costs)
                self._phase = "anneal"
            self._note_best(current)
            self._beat(current, force=True)

            if self._phase == "anneal":
                while not self.schedule.frozen:
                    stop_reason = self._should_stop(started)
                    if stop_reason is not None:
                        break
                    current = self._run_stage(current)
                    self._stage_index += 1
                    self._note_best(current)
                    self._checkpoint_if_due()
                    self._beat(current)
                if stop_reason is None:
                    self._phase = "greedy"
                    self._beat(current, force=True)

            if self._phase == "greedy":
                current, stop_reason = self._greedy_cleanup(current, started)
                if stop_reason is None:
                    self._phase = "done"

            # The final checkpoint records *trajectory* state, so it
            # must be written before any best-so-far restore below —
            # resuming from it continues the interrupted walk
            # bit-exactly, wherever the best happened to be.
            final_path = self.instrumentation.checkpoint_path
            if final_path is not None:
                self._write_checkpoint(final_path)

            if stop_reason is not None and self.best_snapshot is not None:
                # Interrupted: hand back the best layout seen at any
                # stage boundary, not wherever the walk happened to be.
                self.best_snapshot.restore(self.ctx.placement, self.ctx.state)
                self.ctx.timing.full_update()
                current = self.evaluator.terms()

        wall_time = time.perf_counter() - started
        if self.instrumentation.heartbeat is not None:
            # Terminal beat: always forced so watchers (and the watch
            # --gate watchdog) see the final status even on short runs.
            self._beat(
                current,
                status=("completed" if stop_reason is None
                        else f"interrupted: {stop_reason}"),
                force=True,
            )
        profile = None
        if self.profiler is not None:
            profile = self.profiler.finish(
                wall_time, self._attempted, self._accepted
            )
        trace = None
        if tracer is not None:
            if self.instrumentation.snapshot_every > 0:
                from ..obs.snapshot import capture_snapshot

                tracer.snapshot(
                    capture_snapshot(
                        self.ctx.state, self.ctx.timing, label="final"
                    ),
                )
            end_fields = dict(
                moves_attempted=self._attempted,
                moves_accepted=self._accepted,
                temperatures=self.schedule.temperatures_done,
                terms={"G": current.global_unrouted,
                       "D": current.detail_unrouted,
                       "T": current.worst_delay},
                weights={"wg": self.weights.wg,
                         "wd": self.weights.wd,
                         "wt": self.weights.wt},
                final_cost=self.weights.scalar(current),
                state=self.ctx.state.summary(),
            )
            if stop_reason is not None:
                # Only present on interrupted runs, so plain traces are
                # byte-identical to what pre-resilience runs emitted.
                end_fields["interrupted"] = stop_reason
            tracer.run_end(**end_fields)
            trace = tracer.finish()
        return AnnealResult(
            placement=self.ctx.placement,
            state=self.ctx.state,
            timing=self.ctx.timing,
            terms=current,
            dynamics=self.dynamics,
            moves_attempted=self._attempted,
            moves_accepted=self._accepted,
            temperatures=self.schedule.temperatures_done,
            wall_time_s=wall_time,
            profile=profile,
            trace=trace,
            interrupted=stop_reason,
            checkpoint_path=self._last_checkpoint,
        )

    def _run_stage(self, current: CostTerms) -> CostTerms:
        """One temperature stage: attempts, dynamics, adaptation, cooling.

        Mutates: every layer the accepted moves touch, plus the
        schedule, weights, move window, and dynamics trace — exactly
        the old inline loop body, extracted so resume and the stage-
        boundary stop checks share one definition.
        """
        num_cells = self.netlist.num_cells
        num_nets = max(1, self.netlist.num_nets)
        attempts_per_temp = self.config.attempts_per_cell * num_cells
        temperature = self.schedule.temperature
        stage_index = self._stage_index
        tracer = self.tracer

        if self.config.critical_bias > 0:
            self._refocus_moves()
        accumulator = TermAccumulator()
        costs: list[float] = []
        perturbed_cells: set[int] = set()
        accepted_here = 0
        hb = self.instrumentation.heartbeat
        for attempt_index in range(attempts_per_temp):
            accepted, current, cells_touched = self._attempt(
                temperature, current
            )
            if accepted:
                accepted_here += 1
                perturbed_cells.update(cells_touched)
            accumulator.add(current)
            costs.append(self.weights.scalar(current))
            # Mid-stage heartbeat: on large designs one stage can run
            # minutes, so probe the throttle every 256 attempts (off =
            # one ``is not None`` test; on = one monotonic read).
            if hb is not None and attempt_index % 256 == 255 and hb.due():
                self._beat(
                    current,
                    acceptance=accepted_here / (attempt_index + 1),
                )
        acceptance = accepted_here / attempts_per_temp
        self._last_acceptance = acceptance
        sample = TemperatureSample(
            temperature=temperature,
            attempts=attempts_per_temp,
            accepted=accepted_here,
            cells_perturbed_frac=len(perturbed_cells) / num_cells,
            global_unrouted_frac=current.global_unrouted / num_nets,
            unrouted_frac=current.detail_unrouted / num_nets,
            worst_delay=current.worst_delay,
            mean_cost=(sum(costs) / len(costs)) if costs else 0.0,
        )
        self.dynamics.record(sample)
        self.weights.recalibrate(accumulator.mean_terms())
        current = self.evaluator.terms()  # same raw terms, fresh object
        self._adjust_window(acceptance)
        self.schedule.observe(acceptance, costs)
        if tracer is not None:
            # Stage-end terms under the *post-recalibration* weights:
            # the last stage's (terms, weights) pair reconstructs the
            # run's final cost bit-exactly (greedy never recalibrates).
            tracer.stage(
                index=stage_index,
                **sample.as_dict(),
                terms={"G": current.global_unrouted,
                       "D": current.detail_unrouted,
                       "T": current.worst_delay},
                weights={"wg": self.weights.wg,
                         "wd": self.weights.wd,
                         "wt": self.weights.wt},
                window=self.moves.window,
                calm_streak=self.schedule.calm_streak,
            )
            every = self.instrumentation.snapshot_every
            if every > 0 and stage_index % every == 0:
                # Imported lazily: repro.obs.snapshot pulls the
                # route/timing layers, which must not load as a side
                # effect of importing repro.core.
                from ..obs.snapshot import capture_snapshot

                tracer.snapshot(
                    capture_snapshot(
                        self.ctx.state, self.ctx.timing,
                        label=f"stage {stage_index}",
                    ),
                    stage=stage_index,
                )
        self.schedule.next_temperature(costs)
        return current

    def _refocus_moves(self) -> None:
        """Point the move generator at the current near-critical cells.

        Recomputed once per temperature: cells whose slack is within 10%
        of the worst delay of zero become preferred swap candidates with
        probability ``critical_bias``.
        """
        from ..timing.analyzer import TimingReport
        from ..timing.slack import compute_slacks

        timing = self.ctx.timing
        report = TimingReport(
            worst_delay=timing.worst_delay(),
            arrival=list(timing.arrival),
            boundary_in=dict(timing.boundary_in),
            critical_path=[],
            critical_endpoint=None,
        )
        slacks = compute_slacks(self.ctx.state, self.technology, report)
        threshold = 0.10 * max(report.worst_delay, 1e-9)
        focus = [
            index for index, slack in enumerate(slacks) if slack <= threshold
        ]
        self.moves.set_focus(focus, self.config.critical_bias)

    def _adjust_window(self, acceptance: float) -> None:
        """Range limiting: shrink the swap window toward the acceptance target."""
        target = self.config.target_acceptance
        if acceptance > target + 0.1:
            self.moves.set_window(self.moves.window * 0.9)
        elif acceptance < target - 0.1:
            self.moves.set_window(self.moves.window * 1.1)

    # ------------------------------------------------------------------
    # Audits (tests call this after runs)
    # ------------------------------------------------------------------
    def audit(self) -> list[str]:
        """Invariant check; returns problems (empty = clean).

        Delegates to :func:`repro.lint.runtime.check_all`, the single
        consolidated entry point over routing bookkeeping, electrical
        verification, and incremental-timing drift.
        """
        return check_all(self.ctx.state, self.ctx.timing)

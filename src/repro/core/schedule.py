"""Adaptive cooling schedule after Huang, Romeo and
Sangiovanni-Vincentelli (ICCAD 1986) — the schedule the paper cites
([4], Section 3.2).

Three adaptive pieces:

* **starting temperature** — from the cost standard deviation ``sigma``
  of an initial random walk: ``T0 = sigma / -ln(chi0)`` puts the
  initial acceptance probability of an average uphill move near
  ``chi0`` (default 0.9, i.e. a hot start);
* **temperature decrement** — ``T' = T * exp(-lambda_ * T / sigma_T)``
  where ``sigma_T`` is the cost standard deviation observed *at this
  temperature*: when the cost landscape is rough (large sigma) the
  temperature falls slowly, when it is smooth it falls quickly.  The
  ratio is clamped to ``[min_ratio, max_ratio]`` to avoid freezing out
  of a single noisy sample;
* **termination** — frozen when the accepted-move cost impact stays
  within tolerance (acceptance ratio below ``freeze_acceptance`` or
  relative cost spread below ``freeze_spread``) for
  ``freeze_patience`` consecutive temperatures.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass


@dataclass
class ScheduleConfig:
    """Cooling-schedule knobs (see module docstring)."""

    chi0: float = 0.9
    lambda_: float = 0.7
    min_ratio: float = 0.5
    max_ratio: float = 0.98
    freeze_acceptance: float = 0.02
    freeze_spread: float = 1e-4
    freeze_patience: int = 3
    min_temperature: float = 1e-8
    max_temperatures: int = 400

    def __post_init__(self) -> None:
        if not 0 < self.chi0 < 1:
            raise ValueError(f"chi0 must be in (0, 1), got {self.chi0}")
        if self.lambda_ <= 0:
            raise ValueError(f"lambda_ must be positive, got {self.lambda_}")
        if not 0 < self.min_ratio < self.max_ratio <= 1:
            raise ValueError("need 0 < min_ratio < max_ratio <= 1")


class CoolingSchedule:
    """Stateful schedule driven by per-temperature statistics."""

    def __init__(self, config: ScheduleConfig) -> None:
        self.config = config
        self.temperature = 0.0
        self.temperatures_done = 0
        self._calm_streak = 0
        self._started = False

    def start(self, walk_costs: list[float]) -> float:
        """Set T0 from the costs seen along an initial random walk."""
        if len(walk_costs) < 2:
            raise ValueError("need at least 2 random-walk cost samples")
        sigma = statistics.pstdev(walk_costs)
        if sigma <= 0:
            sigma = max(1e-6, abs(walk_costs[0]) * 0.01 + 1e-6)
        self.temperature = sigma / -math.log(self.config.chi0)
        self._started = True
        return self.temperature

    def next_temperature(self, costs_at_temperature: list[float]) -> float:
        """Decrement the temperature given this temperature's cost samples."""
        if not self._started:
            raise RuntimeError("call start() before next_temperature()")
        sigma = (
            statistics.pstdev(costs_at_temperature)
            if len(costs_at_temperature) >= 2
            else 0.0
        )
        if sigma <= 0:
            ratio = self.config.min_ratio
        else:
            ratio = math.exp(-self.config.lambda_ * self.temperature / sigma)
            ratio = min(self.config.max_ratio, max(self.config.min_ratio, ratio))
        self.temperature *= ratio
        self.temperatures_done += 1
        return self.temperature

    def observe(self, acceptance: float, costs_at_temperature: list[float]) -> None:
        """Feed termination statistics for the temperature just finished."""
        if len(costs_at_temperature) >= 2:
            mean = statistics.fmean(costs_at_temperature)
            spread = statistics.pstdev(costs_at_temperature)
            relative = spread / abs(mean) if mean else spread
        else:
            relative = 0.0
        calm = (
            acceptance < self.config.freeze_acceptance
            or relative < self.config.freeze_spread
        )
        self._calm_streak = self._calm_streak + 1 if calm else 0

    def export_state(self) -> dict:
        """The full mutable state, for checkpointing."""
        return {
            "temperature": self.temperature,
            "temperatures_done": self.temperatures_done,
            "calm_streak": self._calm_streak,
        }

    def adopt_state(self, record: dict) -> None:
        """Restore state exported by :meth:`export_state`.

        Mutates: this schedule (temperature, counters, started flag).
        """
        self.temperature = float(record["temperature"])
        self.temperatures_done = int(record["temperatures_done"])
        self._calm_streak = int(record["calm_streak"])
        self._started = True

    @property
    def calm_streak(self) -> int:
        """Consecutive calm temperatures toward the freeze criterion."""
        return self._calm_streak

    @property
    def frozen(self) -> bool:
        """Whether the termination criterion has been met."""
        return (
            self._calm_streak >= self.config.freeze_patience
            or self.temperature < self.config.min_temperature
            or self.temperatures_done >= self.config.max_temperatures
        )

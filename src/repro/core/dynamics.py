"""Per-temperature activity traces — the data behind the paper's Figure 6.

The paper plots, per temperature: the fraction of cells perturbed, the
fraction of nets globally unrouted, and the fraction of nets unrouted
(globally-routed-but-detail-unrouted is the gap between the last two).
The expected shape is the signature of *simultaneous* layout: placement
activity starts aggressive and decays; global unroutability collapses by
mid-anneal; detail unroutability humps while placement churn frees and
takes segments, then converges to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class TemperatureSample:
    """Activity summary for one annealing temperature."""

    temperature: float
    attempts: int
    accepted: int
    cells_perturbed_frac: float
    global_unrouted_frac: float
    unrouted_frac: float
    worst_delay: float
    mean_cost: float

    @property
    def acceptance(self) -> float:
        """Accepted / attempted move ratio."""
        return self.accepted / self.attempts if self.attempts else 0.0

    @property
    def detail_only_unrouted_frac(self) -> float:
        """Globally routed but detail-unrouted (the Figure-6 gap)."""
        return max(0.0, self.unrouted_frac - self.global_unrouted_frac)

    def as_dict(self) -> dict[str, float]:
        """Fields plus derived acceptance, for trace ``stage`` events."""
        return {
            "temperature": self.temperature,
            "attempts": self.attempts,
            "accepted": self.accepted,
            "acceptance": self.acceptance,
            "cells_perturbed_frac": self.cells_perturbed_frac,
            "global_unrouted_frac": self.global_unrouted_frac,
            "unrouted_frac": self.unrouted_frac,
            "worst_delay": self.worst_delay,
            "mean_cost": self.mean_cost,
        }


@dataclass
class DynamicsTrace:
    """The full per-temperature history of one annealing run."""

    samples: list[TemperatureSample] = field(default_factory=list)

    def record(self, sample: TemperatureSample) -> None:
        """Append one per-temperature sample."""
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def series(self, attribute: str) -> list[float]:
        """One named column, e.g. ``series('unrouted_frac')``."""
        return [getattr(sample, attribute) for sample in self.samples]

    def to_csv(self) -> str:
        """The trace as CSV text (temperature descending), for plotting."""
        header = (
            "temperature,acceptance,cells_perturbed_frac,"
            "global_unrouted_frac,unrouted_frac,worst_delay,mean_cost"
        )
        lines = [header]
        for s in self.samples:
            lines.append(
                f"{s.temperature:.6g},{s.acceptance:.4f},"
                f"{s.cells_perturbed_frac:.4f},{s.global_unrouted_frac:.4f},"
                f"{s.unrouted_frac:.4f},{s.worst_delay:.4f},{s.mean_cost:.6g}"
            )
        return "\n".join(lines) + "\n"

    def as_rows(self) -> list[dict[str, float]]:
        """Rows for tabular output (the Figure-6 bench prints these)."""
        return [
            {
                "temperature": s.temperature,
                "acceptance": s.acceptance,
                "cells_perturbed_%": 100 * s.cells_perturbed_frac,
                "global_unrouted_%": 100 * s.global_unrouted_frac,
                "unrouted_%": 100 * s.unrouted_frac,
                "worst_delay_ns": s.worst_delay,
            }
            for s in self.samples
        ]

    # ------------------------------------------------------------------
    # Shape checks (what Figure 6 is evidence of)
    # ------------------------------------------------------------------
    def _mean(self, values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0

    def placement_activity_decays(self) -> bool:
        """Perturbation activity in the first third exceeds the last third."""
        cells = self.series("cells_perturbed_frac")
        third = max(1, len(cells) // 3)
        return self._mean(cells[:third]) > self._mean(cells[-third:])

    def global_routing_converges_by(self, fraction_of_run: float = 0.75) -> bool:
        """Global unroutability reaches zero within the given run fraction."""
        series = self.series("global_unrouted_frac")
        cut = max(1, int(len(series) * fraction_of_run))
        return any(value <= 0.0 for value in series[:cut])

    def detail_hump_exists(self) -> bool:
        """The globally-routed-but-detail-unrouted gap rises then falls."""
        gap = self.series("detail_only_unrouted_frac")
        if len(gap) < 3:
            return False
        peak = max(gap)
        return peak > gap[0] + 1e-12 and gap[-1] < peak

    def converged_to_full_routing(self) -> bool:
        """Whether the final sample shows zero unrouted nets."""
        return bool(self.samples) and self.samples[-1].unrouted_frac <= 0.0

"""The annealer's move set: cell swaps/translations and pinmap changes.

"Our move-set is actually quite simple, comprising only two orthogonal
classes of moves: cell swaps, and pinmap reassignments.  Swaps randomly
exchange the contents at two different logic module locations.  Since
one of these locations may be empty, we also support single cell
translations.  Pinmap reassignments randomly change the pin assignments
for a particular cell from a palette of fixed, legal alternatives."
(paper, Section 3.2)

There are deliberately *no* moves that alter nets: routing changes only
as the rip-up/repair consequence of these placement moves.

A TimberWolf-style *range limiter* shrinks the swap window as the
anneal cools, so late moves are local refinements; the window is a
fraction supplied by the annealer each temperature.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Union

from ..arch.fabric import Slot
from ..place.placement import Placement


@dataclass(frozen=True)
class SwapMove:
    """Exchange the contents of two slots (one may be empty)."""

    slot_a: Slot
    slot_b: Slot

    def cells_involved(self, placement: Placement) -> list[int]:
        """Indices of cells this move touches."""
        cells = []
        for slot in (self.slot_a, self.slot_b):
            cell = placement.cell_at(slot)
            if cell is not None:
                cells.append(cell)
        return cells

    def apply(self, placement: Placement) -> None:
        """Apply the move to the placement.

        Mutates: ``placement`` (exchanges the two slot assignments).
        """
        placement.swap_slots(self.slot_a, self.slot_b)

    def undo(self, placement: Placement) -> None:
        """Exactly invert a previously applied move.

        Mutates: ``placement`` (exchanges the two slot assignments).
        """
        placement.swap_slots(self.slot_a, self.slot_b)


@dataclass(frozen=True)
class PinmapMove:
    """Switch one cell to a different pinmap from its palette."""

    cell_index: int
    new_index: int
    old_index: int

    def cells_involved(self, placement: Placement) -> list[int]:
        """Indices of cells this move touches."""
        return [self.cell_index]

    def apply(self, placement: Placement) -> None:
        """Apply the move to the placement.

        Mutates: ``placement`` (switches the cell's active pinmap).
        """
        placement.set_pinmap(self.cell_index, self.new_index)

    def undo(self, placement: Placement) -> None:
        """Exactly invert a previously applied move.

        Mutates: ``placement`` (switches the cell's active pinmap).
        """
        placement.set_pinmap(self.cell_index, self.old_index)


Move = Union[SwapMove, PinmapMove]


class MoveGenerator:
    """Random move proposals over a placement.

    ``pinmap_probability`` is the fraction of proposals that reassign a
    pinmap instead of swapping slots; ``window`` in (0, 1] scales the
    maximum row/column distance of a swap (range limiting).
    """

    def __init__(
        self,
        placement: Placement,
        rng: random.Random,
        pinmap_probability: float = 0.15,
    ) -> None:
        if not 0 <= pinmap_probability < 1:
            raise ValueError(
                f"pinmap_probability must be in [0, 1), got {pinmap_probability}"
            )
        self.placement = placement
        self.rng = rng
        self.pinmap_probability = pinmap_probability
        self.window = 1.0
        # Criticality focus: when set, a fraction of swap proposals pick
        # their cell from this list instead of uniformly (the paper's
        # "current work" speed direction: spend moves where the timing
        # pressure is).
        self._focus_cells: list[int] = []
        self._focus_probability = 0.0
        fabric = placement.fabric
        self._slots_by_class: dict[str, list[Slot]] = {
            "io": fabric.slots_of_kind("io"),
            "logic": fabric.slots_of_kind("logic"),
        }
        # Cells with more than one pinmap alternative (pinmap moves only
        # make sense for these).
        self._pinmap_cells = [
            cell.index
            for cell in placement.netlist.cells
            if len(placement.palette(cell.index)) > 1
        ]

    def set_window(self, window: float) -> None:
        """Set the range-limiting window fraction (clamped to (0, 1])."""
        self.window = min(1.0, max(0.02, window))

    def set_focus(self, cell_indices: list[int], probability: float) -> None:
        """Bias swap proposals toward the given cells.

        With the given probability, a swap proposal picks its moved cell
        from ``cell_indices`` (e.g. the near-zero-slack cells) instead of
        uniformly.  An empty list or zero probability disables the bias.
        """
        if not 0 <= probability <= 1:
            raise ValueError(
                f"focus probability must be in [0, 1], got {probability}"
            )
        self._focus_cells = list(cell_indices)
        self._focus_probability = probability if cell_indices else 0.0

    def propose(self) -> Optional[Move]:
        """One random legal move, or None if no proposal is possible."""
        if self._pinmap_cells and self.rng.random() < self.pinmap_probability:
            return self._propose_pinmap()
        return self._propose_swap()

    def _propose_pinmap(self) -> Optional[PinmapMove]:
        cell_index = self.rng.choice(self._pinmap_cells)
        palette = self.placement.palette(cell_index)
        old_index = self.placement.pinmap_index(cell_index)
        new_index = self.rng.randrange(len(palette) - 1)
        if new_index >= old_index:
            new_index += 1
        return PinmapMove(cell_index, new_index, old_index)

    def _propose_swap(self) -> Optional[SwapMove]:
        """A swap between a random occupied slot and a window-limited
        compatible slot (possibly empty, never identical)."""
        placement = self.placement
        fabric = placement.fabric
        netlist = placement.netlist
        for _ in range(16):  # retry budget against degenerate picks
            if (
                self._focus_cells
                and self.rng.random() < self._focus_probability
            ):
                cell_index = self.rng.choice(self._focus_cells)
            else:
                cell_index = self.rng.randrange(netlist.num_cells)
            slot_a = placement.slot_of(cell_index)
            if slot_a is None:
                continue
            slot_class = netlist.cells[cell_index].slot_class
            row_a, col_a = slot_a
            max_rows = max(1, int(self.window * fabric.rows))
            max_cols = max(1, int(self.window * fabric.cols))
            pool = self._slots_by_class[slot_class]
            slot_b = self.rng.choice(pool)
            if slot_b == slot_a:
                continue
            if (
                abs(slot_b[0] - row_a) > max_rows
                or abs(slot_b[1] - col_a) > max_cols
            ):
                continue
            other = placement.cell_at(slot_b)
            if other is not None:
                # Both cells must be able to live in each other's slots;
                # same slot class guarantees it, but keep the guard for
                # future heterogeneous slot classes.
                if not placement.compatible(other, slot_a):
                    continue
            return SwapMove(slot_a, slot_b)
        return None

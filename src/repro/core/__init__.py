"""The paper's contribution: the simultaneous place-and-route annealer."""

from .annealer import (
    AnnealResult,
    AnnealerConfig,
    SimultaneousAnnealer,
    fast_config,
    thorough_config,
)
from .cost import CostEvaluator, CostTerms, CostWeights, TermAccumulator
from .dynamics import DynamicsTrace, TemperatureSample
from .moves import Move, MoveGenerator, PinmapMove, SwapMove
from .schedule import CoolingSchedule, ScheduleConfig
from .transaction import LayoutContext, TransactionRecord, apply_move, rollback

__all__ = [
    "AnnealResult",
    "AnnealerConfig",
    "CoolingSchedule",
    "CostEvaluator",
    "CostTerms",
    "CostWeights",
    "DynamicsTrace",
    "LayoutContext",
    "Move",
    "MoveGenerator",
    "PinmapMove",
    "ScheduleConfig",
    "SimultaneousAnnealer",
    "SwapMove",
    "TemperatureSample",
    "TermAccumulator",
    "TransactionRecord",
    "apply_move",
    "fast_config",
    "rollback",
    "thorough_config",
]

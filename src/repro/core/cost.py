"""The annealer's cost function: ``Cost = Wg*G + Wd*D + Wt*T``.

"G counts the number of globally unrouted nets.  Similarly, D counts
the number of nets that lack a complete detailed routing.  T measures
the worst-case delay on the slowest path in the current placement ...
Perhaps most interestingly, there is no wirelength estimation term.
... The weights Wg, Wd and Wt are determined adaptively at runtime so
as to normalize the components of the cost function."
(paper, Section 3.2)

Normalization scheme: at every temperature boundary the annealer feeds
:meth:`CostWeights.recalibrate` the mean magnitude of each raw term
observed during the previous temperature; each weight becomes
``importance / mean_magnitude``, so each term contributes its
importance's share of the scalar cost regardless of its natural units
(counts vs. nanoseconds).  Relative importances default to equal and
are the knobs ablation studies turn.
"""

from __future__ import annotations

from dataclasses import dataclass


from ..route.state import RoutingState
from ..timing.incremental import IncrementalTiming


@dataclass(frozen=True)
class CostTerms:
    """One evaluation of the raw cost components.

    ``G`` and ``D`` are integer counts when read off live state, but the
    fields are typed ``float`` because the same record carries the *mean*
    terms used for weight recalibration — truncating a mean of 0.9
    unrouted nets to 0 would silently hit the weight floor.
    """

    global_unrouted: float  # G (a count; float so means stay exact)
    detail_unrouted: float  # D (a count; float so means stay exact)
    worst_delay: float      # T

    def as_tuple(self) -> tuple[float, float, float]:
        """The raw terms as a (G, D, T) float tuple."""
        return (float(self.global_unrouted), float(self.detail_unrouted),
                self.worst_delay)


class CostWeights:
    """Adaptive weights Wg, Wd, Wt."""

    def __init__(
        self,
        importance_global: float = 1.0,
        importance_detail: float = 1.0,
        importance_timing: float = 1.0,
    ) -> None:
        for name, value in (
            ("importance_global", importance_global),
            ("importance_detail", importance_detail),
            ("importance_timing", importance_timing),
        ):
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        self.importance = (importance_global, importance_detail, importance_timing)
        self.wg = importance_global
        self.wd = importance_detail
        self.wt = importance_timing

    def recalibrate(self, mean_terms: CostTerms) -> None:
        """Set each weight to importance / mean magnitude of its term.

        A term whose mean is (near) zero keeps a floor magnitude of 1 so
        that re-introducing unroutability after full convergence is
        still sharply penalized.
        """
        means = mean_terms.as_tuple()
        self.wg = self.importance[0] / max(1.0, means[0])
        self.wd = self.importance[1] / max(1.0, means[1])
        self.wt = self.importance[2] / max(1e-9, means[2])

    def scalar(self, terms: CostTerms) -> float:
        """The weighted scalar cost of one evaluation."""
        return (
            self.wg * terms.global_unrouted
            + self.wd * terms.detail_unrouted
            + self.wt * terms.worst_delay
        )

    def __repr__(self) -> str:
        return f"CostWeights(wg={self.wg:.4g}, wd={self.wd:.4g}, wt={self.wt:.4g})"


class CostEvaluator:
    """Reads the raw terms off the live routing + timing state."""

    def __init__(
        self,
        state: RoutingState,
        timing: IncrementalTiming,
        weights: CostWeights,
    ) -> None:
        self.state = state
        self.timing = timing
        self.weights = weights

    def terms(self) -> CostTerms:
        """Current raw cost terms read from live state."""
        return CostTerms(
            self.state.count_global_unrouted(),
            self.state.count_detail_unrouted(),
            self.timing.worst_delay(),
        )

    def scalar(self) -> float:
        """Weighted scalar cost under the current weights."""
        return self.weights.scalar(self.terms())


class TermAccumulator:
    """Running means of the raw terms, for weight recalibration."""

    def __init__(self) -> None:
        self.count = 0
        self._sums = [0.0, 0.0, 0.0]

    def add(self, terms: CostTerms) -> None:
        """Accumulate one sample."""
        self.count += 1
        for i, value in enumerate(terms.as_tuple()):
            self._sums[i] += value

    def mean_terms(self) -> CostTerms:
        """Mean of the accumulated term samples (kept as exact floats)."""
        if not self.count:
            return CostTerms(0, 0, 0.0)
        return CostTerms(
            self._sums[0] / self.count,
            self._sums[1] / self.count,
            self._sums[2] / self.count,
        )

    def reset(self) -> None:
        """Clear all accumulated samples."""
        self.count = 0
        self._sums = [0.0, 0.0, 0.0]

"""Atomic move transactions: apply -> evaluate -> commit or rollback.

One placement move sets off the paper's cascade (Section 3.2): rip up
every net on the perturbed cells, mutate the placement, recompute the
affected nets' geometry, let the incremental global and detailed
routers repair whatever they can (including previously-unroutable
bystander nets that fit the freed resources), and propagate the delay
change to the boundaries.

Because the annealer may reject the move, the whole cascade must be
undoable bit-exactly.  :func:`apply_move` journals every net whose
claims can change and captures the timing delta; :func:`rollback`
replays them in the correct order (placement first — route geometry is
recomputed from it — then routing claims, then timing).

A move that touches no nets (a swap of cells with no terminals, or an
unconnected pinmap change) frees no routing capacity, so the repair
queues are exactly as hopeless as the previous transaction left them —
the whole cascade is skipped when the router's fast path is on.

When a :class:`~repro.perf.Profiler` rides on the context, each phase
of the cascade is timed under the guarded-probe pattern (a single
``is not None`` test per phase when profiling is off).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Optional

from ..obs.metrics import MetricsRegistry
from ..perf import Profiler
from ..place.placement import Placement
from ..route.incremental import IncrementalRouter, NetJournal
from ..route.state import RoutingState
from ..timing.incremental import IncrementalTiming, TimingDelta
from .moves import Move


@dataclass
class LayoutContext:
    """The live mutable state one annealer instance operates on."""

    placement: Placement
    state: RoutingState
    router: IncrementalRouter
    timing: IncrementalTiming
    profiler: Optional[Profiler] = None
    #: Trace metrics registry; None unless tracing was requested.
    metrics: Optional[MetricsRegistry] = None


@dataclass
class TransactionRecord:
    """Everything needed to undo one applied move."""

    move: Move
    journal: NetJournal
    timing_delta: TimingDelta
    nets_touched: int


def apply_move(ctx: LayoutContext, move: Move) -> TransactionRecord:
    """Apply ``move`` and the full rip-up/repair/timing cascade.

    Mutates: every layer of ``ctx`` (placement, routing state, timing)
    — the returned record is what makes the cascade undoable.  Affected
    nets are processed in sorted order so the transaction is a pure
    function of *which* nets a move touches, never of set iteration
    order.
    """
    prof = ctx.profiler
    affected_cells = move.cells_involved(ctx.placement)
    affected_nets: set[int] = set()
    for cell_index in affected_cells:
        affected_nets.update(ctx.placement.netlist.nets_of_cell(cell_index))

    journal = NetJournal(ctx.state)
    if not affected_nets and ctx.router.fast_path:
        # Nothing ripped, nothing freed: repair would re-fail every
        # pending net and timing would re-derive every arrival bit-for-
        # bit.  Apply the placement mutation alone.
        move.apply(ctx.placement)
        if prof is not None:
            prof.count("moves", 1)
            prof.count("moves_zero_net", 1)
        mx = ctx.metrics
        if mx is not None:
            mx.count("transaction.zero_net")
        return TransactionRecord(move, journal, TimingDelta(), 0)

    ordered_nets = sorted(affected_nets)
    if prof is not None:
        t0 = perf_counter()
    ctx.router.rip_up_nets(ordered_nets, journal)
    move.apply(ctx.placement)
    ctx.router.refresh_nets(ordered_nets)
    if prof is not None:
        prof.add_time("ripup", perf_counter() - t0)
        t0 = perf_counter()
    ctx.router.repair(journal)
    if prof is not None:
        prof.add_time("repair", perf_counter() - t0)

    touched = sorted(journal.touched())
    if prof is not None:
        t0 = perf_counter()
    timing_delta = ctx.timing.update_nets(touched)
    if prof is not None:
        prof.add_time("timing", perf_counter() - t0)
        prof.count("moves", 1)
        prof.count("nets_ripped", len(affected_nets))
        prof.count("nets_journaled", len(touched))
    mx = ctx.metrics
    if mx is not None:
        mx.observe("transaction.nets_journaled", len(touched))
    return TransactionRecord(move, journal, timing_delta, len(touched))


def rollback(ctx: LayoutContext, record: TransactionRecord) -> None:
    """Undo an applied move bit-exactly.

    Mutates: every layer of ``ctx`` (placement, routing state, timing),
    restoring each to its pre-``record`` snapshot.
    """
    prof = ctx.profiler
    if prof is not None:
        t0 = perf_counter()
    record.move.undo(ctx.placement)
    record.journal.restore_all()
    ctx.timing.restore(record.timing_delta)
    if prof is not None:
        prof.add_time("rollback", perf_counter() - t0)

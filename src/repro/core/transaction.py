"""Atomic move transactions: apply -> evaluate -> commit or rollback.

One placement move sets off the paper's cascade (Section 3.2): rip up
every net on the perturbed cells, mutate the placement, recompute the
affected nets' geometry, let the incremental global and detailed
routers repair whatever they can (including previously-unroutable
bystander nets that fit the freed resources), and propagate the delay
change to the boundaries.

Because the annealer may reject the move, the whole cascade must be
undoable bit-exactly.  :func:`apply_move` journals every net whose
claims can change and captures the timing delta; :func:`rollback`
replays them in the correct order (placement first — route geometry is
recomputed from it — then routing claims, then timing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..place.placement import Placement
from ..route.incremental import IncrementalRouter, NetJournal
from ..route.state import RoutingState
from ..timing.incremental import IncrementalTiming, TimingDelta
from .moves import Move


@dataclass
class LayoutContext:
    """The live mutable state one annealer instance operates on."""

    placement: Placement
    state: RoutingState
    router: IncrementalRouter
    timing: IncrementalTiming


@dataclass
class TransactionRecord:
    """Everything needed to undo one applied move."""

    move: Move
    journal: NetJournal
    timing_delta: TimingDelta
    nets_touched: int


def apply_move(ctx: LayoutContext, move: Move) -> TransactionRecord:
    """Apply ``move`` and the full rip-up/repair/timing cascade."""
    affected_cells = move.cells_involved(ctx.placement)
    affected_nets: set[int] = set()
    for cell_index in affected_cells:
        affected_nets.update(ctx.placement.netlist.nets_of_cell(cell_index))

    journal = NetJournal(ctx.state)
    ctx.router.rip_up_nets(affected_nets, journal)
    move.apply(ctx.placement)
    ctx.router.refresh_nets(affected_nets)
    ctx.router.repair(journal)

    touched = journal.touched()
    timing_delta = ctx.timing.update_nets(touched)
    return TransactionRecord(move, journal, timing_delta, len(touched))


def rollback(ctx: LayoutContext, record: TransactionRecord) -> None:
    """Undo an applied move bit-exactly."""
    record.move.undo(ctx.placement)
    record.journal.restore_all()
    ctx.timing.restore(record.timing_delta)

"""Post-layout inspection with the layout X-ray: snapshots + attribution.

After a layout run, downstream users typically want to know *where* the
congestion and the timing pressure live.  The snapshot subsystem
(``repro.obs.snapshot``) freezes the final layout into a plain JSON
payload — per-channel track density, feedthrough usage, per-net route
geometry, and a critical-path attribution table whose entries re-sum to
the reported ``T`` bit-exactly — and ``repro.obs.xray`` renders it as
terminal heatmaps, path breakdowns, and an SVG floorplan.  Diffing two
snapshots shows what the simultaneous flow actually moved relative to
the sequential baseline.

Run:  python examples/layout_inspection.py
"""

import tempfile
from pathlib import Path

from repro import (
    AnnealerConfig,
    ScheduleConfig,
    SequentialConfig,
    architecture_for,
    run_sequential,
    run_simultaneous,
    tiny,
)
from repro.flows import capture_flow_snapshot
from repro.obs.snapshot import (
    diff_snapshots,
    read_snapshot,
    validate_snapshot,
    write_snapshot,
)
from repro.obs.xray import render_critical_path, render_diff, render_svg
from repro.timing import resummed_path_delay


def small_config(seed: int) -> AnnealerConfig:
    """A deliberately tiny anneal so the example runs in seconds."""
    return AnnealerConfig(
        seed=seed,
        attempts_per_cell=4,
        initial="clustered",
        greedy_rounds=1,
        schedule=ScheduleConfig(lambda_=1.4, max_temperatures=12,
                                freeze_patience=2),
    )


def main() -> None:
    netlist = tiny(seed=61, num_cells=32, depth=4)
    arch = architecture_for(netlist, tracks_per_channel=10)
    seq = run_sequential(netlist, arch,
                         SequentialConfig(seed=4, attempts_per_cell=4))
    sim = run_simultaneous(netlist, arch, small_config(seed=4))
    print(f"laid out {netlist.name}: sequential T = {seq.worst_delay:.2f}, "
          f"simultaneous T = {sim.worst_delay:.2f} ns\n")

    # --- Snapshot: freeze the final layout into plain data --------------
    snapshot = capture_flow_snapshot(sim, arch)
    problems = validate_snapshot(snapshot)
    print(f"snapshot '{snapshot['label']}': "
          f"{len(snapshot['channels'])} channels, "
          f"{len(snapshot['nets'])} nets, "
          f"invariant problems: {problems or 'none'}")

    # The attribution table decomposes T into launch / interconnect /
    # cell contributions; re-summing them reproduces T bit-exactly.
    timing = snapshot["timing"]
    resummed = resummed_path_delay(timing["entries"])
    print(f"T = {timing['T']} ns, re-summed = {resummed} "
          f"(bit-exact: {resummed == timing['T']})\n")
    print(render_critical_path(snapshot, max_segments=5))

    # --- X-ray diff: what did simultaneous layout actually change? ------
    report = diff_snapshots(capture_flow_snapshot(seq, arch), snapshot)
    print()
    print(render_diff(report))

    # --- Persist: snapshots round-trip through JSON on disk --------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "layout_snapshot.json"
        write_snapshot(snapshot, path)
        reloaded = read_snapshot(path)
        print(f"\nsaved snapshot to {path.name} "
              f"({path.stat().st_size} bytes); "
              f"round-trip identical: {reloaded == snapshot}")

        svg_path = Path(tmp) / "floorplan.svg"
        svg_path.write_text(render_svg(snapshot))
        print(f"wrote SVG floorplan: {svg_path.name} "
              f"({svg_path.stat().st_size} bytes)")


if __name__ == "__main__":
    main()

"""Post-layout inspection: slacks, critical cells, save/reload.

After a layout run, downstream users typically want to know *where*
the timing pressure is (slack analysis), and to persist the layout so
analysis doesn't require re-running the annealer.  This example shows
both.

Run:  python examples/layout_inspection.py
"""

import tempfile
from pathlib import Path

from repro import architecture_for, fast_config, run_simultaneous, tiny
from repro.flows import load_layout, save_layout
from repro.timing import analyze, compute_slacks, critical_cells, slack_histogram


def main() -> None:
    netlist = tiny(seed=61, num_cells=50, depth=5)
    arch = architecture_for(netlist, tracks_per_channel=14)
    result = run_simultaneous(netlist, arch, fast_config(seed=4))
    print(f"laid out {netlist.name}: T = {result.worst_delay:.2f} ns, "
          f"routed = {result.fully_routed}\n")

    # --- Slack analysis ------------------------------------------------
    report = result.timing
    slacks = compute_slacks(result.state, arch.technology, report)
    critical = critical_cells(result.state, arch.technology, report)
    print(f"slack range: {min(slacks):.2f} .. {max(slacks):.2f} ns")
    print(f"critical cells ({len(critical)} of {netlist.num_cells}): "
          f"{', '.join(critical[:10])}{' ...' if len(critical) > 10 else ''}")

    print("\nslack histogram (ns -> #cells):")
    for lo, hi, count in slack_histogram(result.state, arch.technology,
                                         report, bins=6):
        bar = "#" * count
        print(f"  [{lo:6.2f}, {hi:6.2f})  {count:3d}  {bar}")

    # --- Save / reload ---------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "layout.json"
        save_layout(result.placement, result.state, path)
        print(f"\nsaved layout to {path.name} "
              f"({path.stat().st_size} bytes)")

        placement2, state2 = load_layout(netlist, arch, path)
        report2 = analyze(state2, arch.technology)
        print(f"reloaded: T = {report2.worst_delay:.2f} ns "
              f"(identical: {abs(report2.worst_delay - report.worst_delay) < 1e-9})")
        print(f"occupancy consistent: {state2.check_consistency() == []}")


if __name__ == "__main__":
    main()

"""The whole Figure-1 flow, multi-chip edition.

synthesis stand-in -> technology mapping -> FM partitioning ->
per-chip simultaneous place & route.

A gate-level circuit is mapped into FPGA cells, split across two
devices with Fiduccia-Mattheyses (cut nets become chip-boundary pads),
and each chip is laid out with the paper's simultaneous engine.

Run:  python examples/multi_chip.py
"""

from repro import architecture_for, fast_config, format_table, run_simultaneous
from repro.partition import bipartition, extract_all_blocks
from repro.techmap import random_logic, technology_map


def main() -> None:
    # 1. "Synthesis": a generic gate network.
    circuit = random_logic(seed=77, num_gates=160, num_inputs=10,
                           num_outputs=8, num_dffs=6)
    print(f"synthesized: {circuit!r}")

    # 2. Technology mapping into 4-input FPGA cells.
    mapped = technology_map(circuit, k=4)
    print(f"mapped:      {mapped.netlist!r} "
          f"({len(mapped.clusters)} logic cells from "
          f"{len(circuit.gates())} gates)")

    # 3. Partition across two chips.
    partition = bipartition(mapped.netlist, seed=5, balance_tolerance=0.15)
    print(f"partitioned: blocks {partition.block_sizes()}, "
          f"cut = {partition.cut_size} nets "
          f"(each cut net becomes a pad pair)\n")

    # 4. Lay out each chip.
    rows = []
    for block_id, chip in extract_all_blocks(partition).items():
        arch = architecture_for(chip, tracks_per_channel=16)
        result = run_simultaneous(chip, arch, fast_config(seed=block_id))
        rows.append(
            [
                f"chip {block_id}",
                chip.num_cells,
                chip.num_nets,
                result.fully_routed,
                result.worst_delay,
                result.wall_time_s,
            ]
        )
        print(f"  chip {block_id} laid out in {result.wall_time_s:.1f} s")

    print()
    print(
        format_table(
            ["chip", "#cells", "#nets", "routed", "worst delay (ns)",
             "time (s)"],
            rows,
            title="Per-chip layout results",
            decimals=1,
        )
    )
    print(
        "\nInter-chip delay (pad -> board -> pad) is outside the model; "
        "the per-chip\ncritical paths above are what the paper's engine "
        "controls."
    )


if __name__ == "__main__":
    main()

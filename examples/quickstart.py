"""Quickstart: lay out one circuit with the simultaneous flow.

Generates a small synthetic circuit, sizes an ACT-1-like row-based
FPGA for it, runs the paper's simultaneous place-and-route annealer,
and prints the resulting layout quality.

Run:  python examples/quickstart.py
"""

from repro import architecture_for, fast_config, run_simultaneous, tiny
from repro.timing import path_depth


def main() -> None:
    # 1. A circuit.  (Swap in repro.paper_benchmark("s1") for a
    #    paper-scale design; this small one keeps the demo snappy.)
    netlist = tiny(seed=7, num_cells=60, depth=5)
    print(f"circuit: {netlist.name}")
    for key, value in netlist.stats().items():
        print(f"  {key:>12}: {value}")

    # 2. A device: rows of logic slots, segmented channels, antifuse RC.
    arch = architecture_for(netlist, tracks_per_channel=14)
    fabric = arch.build()
    print(f"\ndevice: {fabric!r}")

    # 3. Simultaneous placement + global routing + detailed routing.
    result = run_simultaneous(netlist, arch, fast_config(seed=1))

    # 4. What came out.
    print(f"\nflow finished in {result.wall_time_s:.1f} s")
    print(f"  fully routed     : {result.fully_routed}")
    print(f"  worst-case delay : {result.worst_delay:.2f} ns")
    print(f"  critical path    : {' -> '.join(result.timing.critical_path)}")
    print(f"  path depth       : {path_depth(result.timing)} logic levels")
    print(f"  antifuses used   : {result.state.total_antifuses()}")
    print(f"  channel usage    : "
          f"{100 * result.state.fabric.horizontal_utilization():.1f}%")

    dynamics = result.extra["dynamics"]
    print(f"\nanneal dynamics over {len(dynamics)} temperatures "
          f"(the paper's Figure-6 signature):")
    print(f"  placement activity decays   : {dynamics.placement_activity_decays()}")
    print(f"  global routing converged    : {dynamics.global_routing_converges_by()}")
    print(f"  full routing at the end     : {dynamics.converged_to_full_routing()}")


if __name__ == "__main__":
    main()

"""Minimum tracks-per-channel sweep (a mini Table 2).

Bisects, for each flow, the smallest channel track budget at which the
flow still reaches 100% routing — the exact measurement procedure of
the paper's Table 2.

Run:  python examples/wirability_sweep.py
      (takes a few minutes: every probe is a full layout run)
"""

from repro import (
    architecture_for,
    fast_config,
    fast_sequential_config,
    format_table,
    min_tracks_for_routing,
    run_sequential,
    run_simultaneous,
    tiny,
)
from repro.analysis import percent_reduction


def main() -> None:
    netlist = tiny(seed=33, num_cells=70, depth=5)
    arch = architecture_for(netlist, tracks_per_channel=20)
    print(f"design {netlist.name}: {netlist.num_cells} cells, "
          f"{netlist.num_nets} nets")
    print("bisecting minimum tracks/channel for each flow...\n")

    seq_sweep = min_tracks_for_routing(
        lambda nl, a: run_sequential(nl, a, fast_sequential_config(seed=5)),
        netlist,
        arch,
        flow_name="sequential",
        lo=4,
    )
    print(f"sequential probes: {seq_sweep.probes}")

    sim_sweep = min_tracks_for_routing(
        lambda nl, a: run_simultaneous(nl, a, fast_config(seed=5)),
        netlist,
        arch,
        flow_name="simultaneous",
        lo=4,
    )
    print(f"simultaneous probes: {sim_sweep.probes}\n")

    reduction = None
    if seq_sweep.min_tracks and sim_sweep.min_tracks:
        reduction = percent_reduction(
            float(seq_sweep.min_tracks), float(sim_sweep.min_tracks)
        )
    print(
        format_table(
            ["design", "#cells", "seq P&R", "sim P&R", "% fewer tracks"],
            [[
                netlist.name,
                netlist.num_cells,
                seq_sweep.min_tracks,
                sim_sweep.min_tracks,
                reduction,
            ]],
            title="Tracks/channel required for 100% wirability (Table-2 style)",
        )
    )
    print("\npaper's Table 2 band: 20-33% fewer tracks for the "
          "simultaneous flow")


if __name__ == "__main__":
    main()

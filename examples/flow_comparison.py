"""Sequential vs simultaneous flow on one design (a mini Table 1).

Runs the traditional place-then-route baseline and the paper's
simultaneous flow on the same circuit and device, then compares
worst-case delay, routability and runtime.

Run:  python examples/flow_comparison.py [design]
      (design defaults to a small generated circuit; pass e.g. "cse"
       for a paper benchmark — expect a couple of minutes.)
"""

import sys

from repro import (
    architecture_for,
    fast_config,
    fast_sequential_config,
    format_table,
    paper_benchmark,
    run_sequential,
    run_simultaneous,
    timing_improvement_percent,
    tiny,
)


def main() -> None:
    if len(sys.argv) > 1:
        netlist = paper_benchmark(sys.argv[1])
    else:
        netlist = tiny(seed=21, num_cells=80, depth=5)
    arch = architecture_for(netlist, tracks_per_channel=20)

    print(f"design {netlist.name}: {netlist.num_cells} cells, "
          f"{netlist.num_nets} nets\n")

    print("running sequential flow (place, then route, then pray)...")
    seq = run_sequential(netlist, arch, fast_sequential_config(seed=3))
    print(f"  done in {seq.wall_time_s:.1f} s\n")

    print("running simultaneous flow (routing inside the anneal)...")
    sim = run_simultaneous(netlist, arch, fast_config(seed=3))
    print(f"  done in {sim.wall_time_s:.1f} s\n")

    improvement = timing_improvement_percent(seq, sim)
    print(
        format_table(
            ["metric", "sequential", "simultaneous"],
            [
                ["worst-case delay (ns)", seq.worst_delay, sim.worst_delay],
                ["fully routed", seq.fully_routed, sim.fully_routed],
                ["unrouted nets", seq.unrouted_nets, sim.unrouted_nets],
                ["antifuses", seq.state.total_antifuses(),
                 sim.state.total_antifuses()],
                ["wall time (s)", seq.wall_time_s, sim.wall_time_s],
            ],
            title="Flow comparison",
        )
    )
    if improvement is not None:
        print(f"\ntiming improvement: {improvement:.1f}% "
              f"(paper's Table 1 band: 16-28%)")


if __name__ == "__main__":
    main()

"""Architecture ablation: how segmentation and antifuse cost shape layout.

Lays out the same circuit on four device variants:

* ``act1_like``       — mixed segmentation, antifuse-dominated RC (default);
* ``fine_grained``    — everything cut into short segments (max wirability,
                        max antifuses per path);
* ``coarse_grained``  — full-length tracks only (no horizontal antifuses,
                        one net per track per channel);
* ``wire_dominated``  — cheap antifuses, expensive wire (the regime where
                        classical net-length placement is actually fine).

This probes the paper's Section-1 trade-off: small segments help
wirability but "increase the number of antifuses on each signal path,
which is detrimental for timing".

Run:  python examples/architecture_study.py
"""

from repro import fast_config, format_table, run_simultaneous, tiny
from repro.arch import PRESETS


def main() -> None:
    netlist = tiny(seed=41, num_cells=60, depth=5)
    num_io = len(netlist.cells_of_kind("input", "output"))
    num_logic = len(netlist.cells_of_kind("comb", "seq"))
    print(f"design {netlist.name}: {netlist.num_cells} cells\n")

    rows = []
    for name, factory in PRESETS.items():
        arch = factory(num_io, num_logic, tracks_per_channel=14)
        result = run_simultaneous(netlist, arch, fast_config(seed=2))
        rows.append(
            [
                name,
                result.fully_routed,
                result.worst_delay,
                result.state.total_antifuses(),
                100 * result.state.fabric.horizontal_utilization(),
            ]
        )
        print(f"  {name}: done in {result.wall_time_s:.1f} s")

    print()
    print(
        format_table(
            ["architecture", "routed", "worst delay (ns)", "antifuses",
             "channel use (%)"],
            rows,
            title="Same circuit, four devices",
            decimals=1,
        )
    )
    print(
        "\nExpected shape: fine_grained maximizes antifuse count (slow, "
        "wirable);\ncoarse_grained minimizes it (fast per net, but track-"
        "hungry);\nact1_like sits between; wire_dominated shifts delay from "
        "fuse count to length."
    )


if __name__ == "__main__":
    main()

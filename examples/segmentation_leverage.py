"""The paper's Figure-2 argument, reconstructed on a real channel.

Demonstrates why net-length-driven placement fails on segmented
row-based FPGAs:

* a net interval that straddles a segment break consumes BOTH segments
  (joined by a horizontal antifuse), starving its neighbours;
* an equal-length interval aligned inside one segment coexists happily;
* so two placements with IDENTICAL wirelength can differ between
  unroutable and routable — and a one-cell move is all it takes to fix
  the bad one ("leverage", paper Section 2.1).

Run:  python examples/segmentation_leverage.py
"""

from repro.arch import Channel, custom_segmentation


def show(channel: Channel, title: str) -> None:
    print(f"  {title}")
    for t, row in enumerate(channel.occupancy_rows()):
        print(f"    track {t}: {row}")


def main() -> None:
    print("Channel: 8 columns, ONE track, segment break at column 4")
    print("         segments: [0,4) | [4,8)\n")

    # --- The compact (net-length-optimal-looking) placement -----------
    print("Placement A: net N1 spans columns [2,4], net N2 spans [5,6]")
    channel = Channel(0, custom_segmentation(8, [[4]]))
    n1 = channel.candidate_on(0, 2, 4)
    print(f"  N1 [2,4]: crosses the break -> uses {n1.num_segments} segments "
          f"({n1.num_segments - 1} antifuse)")
    channel.claim(1, n1, 2, 4)
    show(channel, "after routing N1:")
    n2 = channel.candidate_on(0, 5, 6)
    print(f"  N2 [5,6]: {'routable' if n2 else 'UNROUTABLE - segment [4,8) is gone'}")

    # --- One cell moved ------------------------------------------------
    print("\nPlacement B: one endpoint of N1 moved by ONE column -> N1 = [2,3]")
    channel = Channel(0, custom_segmentation(8, [[4]]))
    n1 = channel.candidate_on(0, 2, 3)
    print(f"  N1 [2,3]: fits inside segment [0,4) -> uses {n1.num_segments} segment")
    channel.claim(1, n1, 2, 3)
    n2 = channel.candidate_on(0, 5, 6)
    print(f"  N2 [5,6]: {'routable' if n2 else 'UNROUTABLE'}")
    channel.claim(2, n2, 5, 6)
    show(channel, "after routing both:")

    # --- The moral -------------------------------------------------------
    print(
        "\nBoth placements give N1 a span of 2 columns: a wirelength-driven"
        "\nplacer cannot tell them apart, yet one is unroutable.  Routing"
        "\nknowledge must live INSIDE the placement loop - which is exactly"
        "\nwhat the simultaneous formulation does."
    )


if __name__ == "__main__":
    main()
